#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/bits.h"
#include "common/logging.h"

namespace treebeard {

ThreadPool::ThreadPool(unsigned num_threads)
{
    fatalIf(num_threads == 0, "ThreadPool requires at least one thread");
    // One "worker" means inline execution; no background threads needed.
    if (num_threads == 1)
        return;
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        shuttingDown_ = true;
    }
    wakeWorkers_.notifyAll();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!shuttingDown_ && tasks_.empty())
                wakeWorkers_.wait(lock);
            if (shuttingDown_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        tasks_.push(std::move(task));
    }
    wakeWorkers_.notifyOne();
}

void
ThreadPool::enqueueDetached(std::function<void()> task)
{
    fatalIf(workers_.empty(),
            "ThreadPool::enqueueDetached needs background workers: a "
            "one-thread pool executes inline and would never run a "
            "detached task");
    enqueue(std::move(task));
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)> &body)
{
    if (begin >= end)
        return;

    int64_t range = end - begin;
    int64_t slots = workers_.empty() ? 1 : static_cast<int64_t>(workers_.size());
    int64_t chunk = ceilDiv(range, slots);

    if (slots == 1 || chunk >= range) {
        body(begin, end);
        return;
    }

    // The completion latch must outlive this frame: a spurious caller
    // wakeup can observe remaining == 0 and return while the last task
    // is still between its decrement and its notify, so the tasks hold
    // shared ownership of the latch instead of borrowing stack state.
    struct Latch
    {
        Mutex mutex{"ThreadPool.latch"};
        CondVar cv;
        int64_t remaining GUARDED_BY(mutex) = 0;
    };
    auto latch = std::make_shared<Latch>();
    {
        MutexLock lock(latch->mutex);
        latch->remaining = ceilDiv(range, chunk);
    }

    for (int64_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
        int64_t chunk_end = std::min(chunk_begin + chunk, end);
        enqueue([latch, &body, chunk_begin, chunk_end] {
            body(chunk_begin, chunk_end);
            MutexLock lock(latch->mutex);
            if (--latch->remaining == 0)
                latch->cv.notifyOne();
        });
    }

    MutexLock lock(latch->mutex);
    while (latch->remaining != 0)
        latch->cv.wait(lock);
}

void
ThreadPool::runOnAllWorkers(const std::function<void(unsigned)> &task)
{
    unsigned slots = workers_.empty() ? 1 : numThreads();
    parallelFor(0, slots, [&](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i)
            task(static_cast<unsigned>(i));
    });
}

} // namespace treebeard
