#include "common/thread_pool.h"

#include <atomic>

#include "common/bits.h"
#include "common/logging.h"

namespace treebeard {

ThreadPool::ThreadPool(unsigned num_threads)
{
    fatalIf(num_threads == 0, "ThreadPool requires at least one thread");
    // One "worker" means inline execution; no background threads needed.
    if (num_threads == 1)
        return;
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shuttingDown_ = true;
    }
    wakeWorkers_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeWorkers_.wait(lock, [this] {
                return shuttingDown_ || !tasks_.empty();
            });
            if (shuttingDown_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    wakeWorkers_.notify_one();
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)> &body)
{
    if (begin >= end)
        return;

    int64_t range = end - begin;
    int64_t slots = workers_.empty() ? 1 : static_cast<int64_t>(workers_.size());
    int64_t chunk = ceilDiv(range, slots);

    if (slots == 1 || chunk >= range) {
        body(begin, end);
        return;
    }

    std::atomic<int64_t> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    for (int64_t chunk_begin = begin; chunk_begin < end; chunk_begin += chunk) {
        int64_t chunk_end = std::min(chunk_begin + chunk, end);
        remaining.fetch_add(1, std::memory_order_relaxed);
        enqueue([&, chunk_begin, chunk_end] {
            body(chunk_begin, chunk_end);
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_one();
            }
        });
    }

    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] {
        return remaining.load(std::memory_order_acquire) == 0;
    });
}

void
ThreadPool::runOnAllWorkers(const std::function<void(unsigned)> &task)
{
    unsigned slots = workers_.empty() ? 1 : numThreads();
    parallelFor(0, slots, [&](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i)
            task(static_cast<unsigned>(i));
    });
}

} // namespace treebeard
