/**
 * @file
 * Error reporting and status-message helpers.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - fatal():  the condition is the *user's* fault (bad model file, invalid
 *              schedule). Raises treebeard::Error so callers can recover.
 *  - panic():  the condition indicates a bug inside the library. Aborts.
 *  - warn()/inform(): non-fatal status messages to stderr.
 */
#ifndef TREEBEARD_COMMON_LOGGING_H
#define TREEBEARD_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace treebeard {

/**
 * Exception type raised for all user-recoverable errors.
 *
 * Errors raised by subsystems with a stable diagnostic taxonomy (the
 * verifier's "<level>.<subject>.<violation>" scheme, the serving
 * layer's "serve.registry.*" / "serve.queue.*" families) additionally
 * carry a machine-readable code so clients can branch on code()
 * instead of matching message strings. Errors raised through the
 * plain fatal() helpers have an empty code.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &message)
        : std::runtime_error(message)
    {}

    Error(std::string code, const std::string &message)
        : std::runtime_error(message), code_(std::move(code))
    {}

    /** Stable machine-readable code ("" when uncoded). */
    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

namespace detail {

/** Concatenate a variadic argument pack into one string via a stream. */
template <typename... Args>
std::string
concatToString(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Raise an Error for a user-caused failure.
 * @param args message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw Error(detail::concatToString(std::forward<Args>(args)...));
}

/**
 * Raise a coded Error for a user-caused failure in a subsystem with a
 * stable diagnostic-code taxonomy.
 * @param code stable machine-readable code (e.g. "serve.queue.full").
 * @param args message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
fatalCoded(std::string code, Args &&...args)
{
    throw Error(std::move(code),
                detail::concatToString(std::forward<Args>(args)...));
}

/**
 * Abort on an internal invariant violation (a library bug).
 * @param args message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string message = detail::concatToString(std::forward<Args>(args)...);
    std::fprintf(stderr, "treebeard panic: %s\n", message.c_str());
    std::abort();
}

/** Emit a warning to stderr; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::string message = detail::concatToString(std::forward<Args>(args)...);
    std::fprintf(stderr, "treebeard warning: %s\n", message.c_str());
}

/** Emit an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::string message = detail::concatToString(std::forward<Args>(args)...);
    std::fprintf(stderr, "treebeard info: %s\n", message.c_str());
}

/** fatal() unless the user-facing condition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

/** panic() unless the internal invariant holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

} // namespace treebeard

#endif // TREEBEARD_COMMON_LOGGING_H
