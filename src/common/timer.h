/**
 * @file
 * Wall-clock timing helpers used by the benchmark harnesses.
 */
#ifndef TREEBEARD_COMMON_TIMER_H
#define TREEBEARD_COMMON_TIMER_H

#include <chrono>
#include <cstdint>

namespace treebeard {

/** A simple monotonic stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        auto delta = Clock::now() - start_;
        return std::chrono::duration<double>(delta).count();
    }

    /** Elapsed time in microseconds. */
    double elapsedMicros() const { return elapsedSeconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace treebeard

#endif // TREEBEARD_COMMON_TIMER_H
