#include "tuner/auto_tuner.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "common/timer.h"
#include "model/model_stats.h"
#include "treebeard/compiler.h"

namespace treebeard::tuner {

std::vector<hir::Schedule>
enumerateSchedules(const TunerOptions &options)
{
    std::vector<hir::Schedule> schedules;
    bool node_parallel =
        std::find(options.traversals.begin(), options.traversals.end(),
                  hir::TraversalKind::kNodeParallel) !=
        options.traversals.end();
    for (hir::LoopOrder order :
         node_parallel ? options.loopOrders
                       : std::vector<hir::LoopOrder>{}) {
        for (int32_t tile_size : options.tileSizes) {
            for (hir::TilingAlgorithm tiling : options.tilings) {
                // alpha/beta only matter when the leaf-bias gate runs.
                std::vector<std::pair<double, double>> gates =
                    tiling == hir::TilingAlgorithm::kHybrid
                        ? options.alphaBetas
                        : std::vector<std::pair<double, double>>{
                              {0.075, 0.9}};
                for (auto [alpha, beta] : gates) {
                    for (bool unroll : options.padAndUnroll) {
                        for (int32_t interleave :
                             options.interleaveFactors) {
                            for (hir::MemoryLayout layout :
                                 options.layouts) {
                                // Precision is a packed-record knob;
                                // other layouts take one grid point.
                                std::vector<hir::PackedPrecision>
                                    precisions =
                                        layout == hir::MemoryLayout::
                                                      kPacked
                                            ? options.packedPrecisions
                                            : std::vector<
                                                  hir::PackedPrecision>{
                                                  hir::PackedPrecision::
                                                      kF32};
                                // Chunk size only changes how a
                                // threaded row loop partitions; a
                                // serial plan takes one grid point.
                                std::vector<int32_t> chunks =
                                    options.numThreads > 1
                                        ? options.rowChunks
                                        : std::vector<int32_t>{0};
                                if (chunks.empty())
                                    chunks.push_back(0);
                                std::vector<double> hots =
                                    options.hotPathCoverages;
                                if (hots.empty())
                                    hots.push_back(0.0);
                                for (hir::PackedPrecision precision :
                                     precisions) {
                                    for (int32_t chunk : chunks) {
                                        hir::Schedule schedule;
                                        schedule.loopOrder = order;
                                        schedule.tileSize = tile_size;
                                        schedule.tiling = tiling;
                                        schedule.alpha = alpha;
                                        schedule.beta = beta;
                                        schedule.padAndUnrollWalks =
                                            unroll;
                                        schedule.interleaveFactor =
                                            interleave;
                                        schedule.layout = layout;
                                        schedule.packedPrecision =
                                            precision;
                                        schedule.numThreads =
                                            options.numThreads;
                                        schedule.rowChunkRows = chunk;
                                        for (double hot : hots) {
                                            // Hot emission forces
                                            // tree-major order and
                                            // subsumes interleaving:
                                            // nonzero coverages take
                                            // one representative point
                                            // instead of duplicating
                                            // timings across those
                                            // axes.
                                            if (hot > 0.0 &&
                                                (order !=
                                                     options.loopOrders
                                                         .front() ||
                                                 interleave !=
                                                     options
                                                         .interleaveFactors
                                                         .front()))
                                                continue;
                                            schedule.hotPathCoverage =
                                                hot;
                                            schedules.push_back(
                                                schedule);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Row-parallel points: only tile size 1 (the lane-group walkers
    // are 8 scalar walks in lockstep; larger tiles already spend the
    // vector width inside the node), always tree-major, interleave
    // ignored — so the sub-grid is tiling x unroll x layout/precision
    // x chunk. Hot-path coverage stays 0 here: hot emission replaces
    // the lane-group inner loop, so a nonzero coverage would just
    // duplicate the node-parallel hot points.
    bool row_parallel =
        std::find(options.traversals.begin(), options.traversals.end(),
                  hir::TraversalKind::kRowParallel) !=
        options.traversals.end();
    bool has_tile1 = std::find(options.tileSizes.begin(),
                               options.tileSizes.end(),
                               1) != options.tileSizes.end();
    if (row_parallel && has_tile1) {
        for (hir::TilingAlgorithm tiling : options.tilings) {
            for (bool unroll : options.padAndUnroll) {
                for (hir::MemoryLayout layout : options.layouts) {
                    std::vector<hir::PackedPrecision> precisions =
                        layout == hir::MemoryLayout::kPacked
                            ? options.packedPrecisions
                            : std::vector<hir::PackedPrecision>{
                                  hir::PackedPrecision::kF32};
                    std::vector<int32_t> chunks =
                        options.numThreads > 1
                            ? options.rowChunks
                            : std::vector<int32_t>{0};
                    if (chunks.empty())
                        chunks.push_back(0);
                    for (hir::PackedPrecision precision : precisions) {
                        for (int32_t chunk : chunks) {
                            hir::Schedule schedule;
                            schedule.traversal =
                                hir::TraversalKind::kRowParallel;
                            schedule.tileSize = 1;
                            schedule.tiling = tiling;
                            schedule.padAndUnrollWalks = unroll;
                            schedule.layout = layout;
                            schedule.packedPrecision = precision;
                            schedule.numThreads = options.numThreads;
                            schedule.rowChunkRows = chunk;
                            schedules.push_back(schedule);
                        }
                    }
                }
            }
        }
    }
    return schedules;
}

TunerResult
exploreSchedules(const model::Forest &forest, const float *rows,
                 int64_t num_rows, const TunerOptions &options)
{
    fatalIf(num_rows <= 0, "tuner needs a non-empty sample batch");
    std::vector<hir::Schedule> schedules = enumerateSchedules(options);
    fatalIf(schedules.empty(), "tuner grid is empty");
    fatalIf(options.backends.empty(), "tuner backend list is empty");

    TunerResult result;
    result.best.seconds = std::numeric_limits<double>::infinity();
    std::vector<float> predictions(
        static_cast<size_t>(num_rows) *
        static_cast<size_t>(forest.numClasses()));

    for (const hir::Schedule &schedule : schedules) {
        for (Backend backend : options.backends) {
            TunedPoint point;
            point.schedule = schedule;
            point.backend = backend;

            double best_seconds;
            try {
                CompilerOptions compiler_options;
                compiler_options.backend = backend;
                compiler_options.jit.cacheDir = options.jitCacheDir;
                compiler_options.jit.cacheMaxBytes =
                    options.jitCacheMaxBytes;
                Timer compile_timer;
                Session session =
                    compile(forest, schedule, compiler_options);
                point.compileSeconds = compile_timer.elapsedSeconds();

                // Warm-up, then best-of-N timing.
                session.predict(rows, num_rows, predictions.data());
                best_seconds = std::numeric_limits<double>::infinity();
                for (int32_t rep = 0; rep < options.repetitions;
                     ++rep) {
                    Timer timer;
                    session.predict(rows, num_rows,
                                    predictions.data());
                    best_seconds = std::min(best_seconds,
                                            timer.elapsedSeconds());
                }
            } catch (const Error &error) {
                // Some grid points are infeasible for a given model
                // (e.g. the array layout's total-tile cap on deep
                // forests); skip them rather than abandoning the
                // exploration.
                if (options.verbose) {
                    inform("tuner: skipping ", schedule.toString(),
                           " [", backendName(backend), "]: ",
                           error.what());
                }
                continue;
            }
            point.seconds = best_seconds;

            if (options.verbose) {
                inform("tuner: ", schedule.toString(), " [",
                       backendName(backend), "] -> ",
                       best_seconds * 1e6 / num_rows, " us/row");
            }
            if (point.seconds < result.best.seconds)
                result.best = point;
            result.all.push_back(point);
        }
    }

    std::sort(result.all.begin(), result.all.end(),
              [](const TunedPoint &a, const TunedPoint &b) {
                  return a.seconds < b.seconds;
              });
    return result;
}

namespace {

JsonValue
pointToJson(const TunedPoint &point)
{
    JsonValue::Object object;
    object["schedule"] =
        JsonValue::parse(hir::scheduleToJsonString(point.schedule));
    object["backend"] = JsonValue(backendName(point.backend));
    object["seconds"] = JsonValue(point.seconds);
    object["compile_seconds"] = JsonValue(point.compileSeconds);
    return JsonValue(std::move(object));
}

} // namespace

void
appendTuningRecord(const std::string &path,
                   const model::Forest &forest,
                   const TunerResult &result)
{
    model::ForestStats stats = model::computeForestStats(forest);
    JsonValue::Object model_features;
    model_features["num_features"] =
        JsonValue(static_cast<int64_t>(stats.numFeatures));
    model_features["num_trees"] = JsonValue(stats.numTrees);
    model_features["max_depth"] =
        JsonValue(static_cast<int64_t>(stats.maxDepth));
    model_features["total_nodes"] = JsonValue(stats.totalNodes);
    model_features["total_leaves"] = JsonValue(stats.totalLeaves);
    model_features["leaf_biased_trees"] =
        JsonValue(stats.leafBiasedTrees);
    model_features["average_leaf_depth"] =
        JsonValue(stats.averageLeafDepth);
    model_features["objective"] =
        JsonValue(model::objectiveName(forest.objective()));

    JsonValue::Array points;
    points.reserve(result.all.size());
    for (const TunedPoint &point : result.all)
        points.push_back(pointToJson(point));

    JsonValue::Object record;
    record["model"] = JsonValue(std::move(model_features));
    record["points"] = JsonValue(std::move(points));
    record["best"] = pointToJson(result.best);

    std::ofstream out(path, std::ios::app);
    fatalIf(!out, "cannot open tuning database ", path,
            " for appending");
    out << JsonValue(std::move(record)).dump() << "\n";
    fatalIf(!out, "failed to append tuning record to ", path);
}

} // namespace treebeard::tuner
