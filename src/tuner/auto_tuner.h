/**
 * @file
 * Schedule-space exploration (Table II of the paper): enumerate the
 * optimization grid, compile and time each configuration on a sample
 * batch, and pick the fastest. This is the "--explore" workflow of the
 * paper's artifact.
 */
#ifndef TREEBEARD_TUNER_AUTO_TUNER_H
#define TREEBEARD_TUNER_AUTO_TUNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "hir/schedule.h"
#include "model/forest.h"
#include "treebeard/compiler.h"

namespace treebeard::tuner {

/** The grid of configurations to explore (defaults follow Table II). */
struct TunerOptions
{
    std::vector<hir::LoopOrder> loopOrders{
        hir::LoopOrder::kOneTreeAtATime,
        hir::LoopOrder::kOneRowAtATime};
    std::vector<int32_t> tileSizes{1, 2, 4, 8};
    std::vector<hir::TilingAlgorithm> tilings{
        hir::TilingAlgorithm::kBasic, hir::TilingAlgorithm::kHybrid};
    std::vector<bool> padAndUnroll{true, false};
    std::vector<int32_t> interleaveFactors{1, 2, 4, 8};
    /** (alpha, beta) pairs for the leaf-bias gate (hybrid only). */
    std::vector<std::pair<double, double>> alphaBetas{
        {0.05, 0.9}, {0.075, 0.9}, {0.1, 0.9}};
    /**
     * Memory layouts to explore. Packed is in the default grid: for
     * deep models its one-line-per-tile records usually win, and the
     * tuner resolves the choice empirically.
     */
    std::vector<hir::MemoryLayout> layouts{hir::MemoryLayout::kSparse,
                                           hir::MemoryLayout::kPacked,
                                           hir::MemoryLayout::kArray};
    /**
     * Packed-record precisions to explore. Applied only to packed
     * grid points (other layouts ignore the knob, so sweeping it
     * there would just duplicate timings). The default explores both:
     * int16 halves the record but costs a per-row quantization pass,
     * and the winner depends on model depth and batch size.
     */
    std::vector<hir::PackedPrecision> packedPrecisions{
        hir::PackedPrecision::kF32, hir::PackedPrecision::kI16};
    /**
     * Traversal kinds to explore. Node-parallel points sweep the full
     * grid; row-parallel is only enumerated for tile size 1 (its
     * vectorized walkers are lane groups of scalar walks — tiling
     * already owns the intra-node parallelism at larger tiles) and
     * pins loopOrder/interleaveFactor, which it ignores. The default
     * explores both so the tuner finds the node- vs row-parallel
     * crossover per model empirically.
     */
    std::vector<hir::TraversalKind> traversals{
        hir::TraversalKind::kNodeParallel,
        hir::TraversalKind::kRowParallel};
    /**
     * Hot-path coverages (Schedule::hotPathCoverage) to explore. 0 is
     * the plain tiled walk; nonzero values compile each tree's
     * high-probability root subtree to straight-line code. Because hot
     * emission forces tree-major execution and subsumes interleaving,
     * nonzero coverages are enumerated against one representative
     * (first) loop order and interleave factor instead of the full
     * cross, and row-parallel points keep coverage 0.
     */
    std::vector<double> hotPathCoverages{0.0, 0.5, 0.8, 0.95};
    int32_t numThreads = 1;
    /**
     * Row-chunk sizes (Schedule::rowChunkRows) to explore. Only swept
     * when numThreads > 1 — a serial plan runs every row in one chunk
     * regardless, so the knob would just duplicate grid points. 0 is
     * the auto chunk (ceil(rows / workers), one chunk per worker).
     */
    std::vector<int32_t> rowChunks{0, 64, 256};
    /** Timing repetitions; the minimum is kept. */
    int32_t repetitions = 3;
    /** Print progress to stderr. */
    bool verbose = false;
    /**
     * Backends to time each schedule on. The default explores only the
     * kernel runtime; add Backend::kSourceJit to also time the source
     * backend (every grid point then invokes the system compiler —
     * set jitCacheDir to amortize repeated runs).
     */
    std::vector<Backend> backends{Backend::kKernel};
    /** Source-JIT disk cache directory for the sweep ("" = off). */
    std::string jitCacheDir;
    /** LRU byte cap on that cache (0 = unlimited). */
    int64_t jitCacheMaxBytes = 0;
};

/** One timed configuration. */
struct TunedPoint
{
    hir::Schedule schedule;
    Backend backend = Backend::kKernel;
    /** Best-of-repetitions seconds for the sample batch. */
    double seconds = 0.0;
    double compileSeconds = 0.0;
};

/** The exploration outcome. */
struct TunerResult
{
    TunedPoint best;
    std::vector<TunedPoint> all;
};

/**
 * Enumerate the grid (pruned: alpha/beta vary only under hybrid
 * tiling; interleaving over trees is skipped for groups too small).
 */
std::vector<hir::Schedule> enumerateSchedules(const TunerOptions &options);

/**
 * Time every configuration of @p options on @p rows (row-major,
 * @p num_rows x forest.numFeatures()) and return the ranking.
 */
TunerResult exploreSchedules(const model::Forest &forest,
                             const float *rows, int64_t num_rows,
                             const TunerOptions &options = {});

/**
 * Append one JSON-lines record of a tuning run to the database at
 * @p path (created when absent): the model's structural features,
 * every timed point (full schedule JSON, backend, measured and compile
 * seconds) and the chosen best point. One line per call, so runs
 * accumulate into a grep/stream-friendly corpus for offline schedule
 * prediction.
 */
void appendTuningRecord(const std::string &path,
                        const model::Forest &forest,
                        const TunerResult &result);

} // namespace treebeard::tuner

#endif // TREEBEARD_TUNER_AUTO_TUNER_H
