#include "mir/mir.h"

#include <sstream>

#include "common/logging.h"

namespace treebeard::mir {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kFunction: return "func";
      case OpKind::kParallelFor: return "parallel.for";
      case OpKind::kFor: return "for";
      case OpKind::kInitAccumulator: return "init_accumulator";
      case OpKind::kWalkGroup: return "walk_group";
      case OpKind::kWriteOutput: return "write_output";
    }
    panic("unknown MIR op kind");
}

MirOp &
MirOp::addChild(MirOp op)
{
    children.push_back(std::move(op));
    return children.back();
}

void
MirOp::collect(OpKind target, std::vector<const MirOp *> &out) const
{
    if (kind == target)
        out.push_back(this);
    for (const MirOp &child : children)
        child.collect(target, out);
}

void
MirOp::collectMutable(OpKind target, std::vector<MirOp *> &out)
{
    if (kind == target)
        out.push_back(this);
    for (MirOp &child : children)
        child.collectMutable(target, out);
}

void
MirOp::print(std::string &out, int indent) const
{
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += opKindName(kind);
    switch (kind) {
      case OpKind::kParallelFor:
      case OpKind::kFor:
        out += " " + inductionVar + " = " + lower + " to " + upper +
               " step " + step;
        break;
      case OpKind::kWalkGroup: {
        std::ostringstream os;
        os << " group=" << groupIndex;
        if (interleave > 1) {
            os << " interleave=" << interleave << "x"
               << (interleaveAxis == InterleaveAxis::kRows ? "rows"
                                                           : "trees");
        }
        if (unrolled)
            os << " unrolled depth=" << walkDepth;
        else if (peelDepth > 0)
            os << " peel=" << peelDepth;
        out += os.str();
        break;
      }
      default:
        break;
    }
    if (children.empty()) {
        out += "\n";
        return;
    }
    out += " {\n";
    for (const MirOp &child : children)
        child.print(out, indent + 1);
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += "}\n";
}

std::string
MirFunction::print() const
{
    std::string out = "mir.func predictForest(rows, numRows, "
                      "predictions) {\n";
    for (const MirOp &child : body.children)
        child.print(out, 1);
    out += "}\n";
    return out;
}

std::vector<const MirOp *>
MirFunction::walkOps() const
{
    std::vector<const MirOp *> out;
    body.collect(OpKind::kWalkGroup, out);
    return out;
}

std::vector<MirOp *>
MirFunction::walkOpsMutable()
{
    std::vector<MirOp *> out;
    body.collectMutable(OpKind::kWalkGroup, out);
    return out;
}

bool
MirFunction::isParallel() const
{
    std::vector<const MirOp *> loops;
    body.collect(OpKind::kParallelFor, loops);
    return !loops.empty();
}

void
MirFunction::verify() const
{
    fatalIf(body.kind != OpKind::kFunction,
            "MIR function body must be a kFunction op");
    std::vector<const MirOp *> walks = walkOps();
    fatalIf(walks.empty(), "MIR function has no walk ops");
    for (const MirOp *walk : walks) {
        fatalIf(walk->groupIndex < 0, "walk op without a group");
        fatalIf(walk->interleave < 1, "walk op with interleave < 1");
        fatalIf(walk->interleave > 1 &&
                    walk->interleaveAxis == InterleaveAxis::kNone,
                "interleaved walk without an axis");
        fatalIf(walk->unrolled && walk->walkDepth < 1,
                "unrolled walk with depth < 1");
    }
    std::vector<const MirOp *> outputs;
    body.collect(OpKind::kWriteOutput, outputs);
    fatalIf(outputs.empty(), "MIR function never writes its output");
}

} // namespace treebeard::mir
