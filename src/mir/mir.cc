#include "mir/mir.h"

#include <sstream>

#include "analysis/diagnostics.h"
#include "common/logging.h"

namespace treebeard::mir {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kFunction: return "func";
      case OpKind::kParallelFor: return "parallel.for";
      case OpKind::kFor: return "for";
      case OpKind::kInitAccumulator: return "init_accumulator";
      case OpKind::kWalkGroup: return "walk_group";
      case OpKind::kWriteOutput: return "write_output";
    }
    panic("unknown MIR op kind");
}

MirOp &
MirOp::addChild(MirOp op)
{
    children.push_back(std::move(op));
    return children.back();
}

void
MirOp::collect(OpKind target, std::vector<const MirOp *> &out) const
{
    if (kind == target)
        out.push_back(this);
    for (const MirOp &child : children)
        child.collect(target, out);
}

void
MirOp::collectMutable(OpKind target, std::vector<MirOp *> &out)
{
    if (kind == target)
        out.push_back(this);
    for (MirOp &child : children)
        child.collectMutable(target, out);
}

void
MirOp::print(std::string &out, int indent) const
{
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += opKindName(kind);
    switch (kind) {
      case OpKind::kParallelFor:
      case OpKind::kFor:
        out += " " + inductionVar + " = " + lower + " to " + upper +
               " step " + step;
        break;
      case OpKind::kWalkGroup: {
        std::ostringstream os;
        os << " group=" << groupIndex;
        if (interleave > 1) {
            os << " interleave=" << interleave << "x"
               << (interleaveAxis == InterleaveAxis::kRows ? "rows"
                                                           : "trees");
        }
        if (unrolled)
            os << " unrolled depth=" << walkDepth;
        else if (peelDepth > 0)
            os << " peel=" << peelDepth;
        out += os.str();
        break;
      }
      default:
        break;
    }
    if (children.empty()) {
        out += "\n";
        return;
    }
    out += " {\n";
    for (const MirOp &child : children)
        child.print(out, indent + 1);
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += "}\n";
}

std::string
MirFunction::print() const
{
    std::string out = "mir.func predictForest(rows, numRows, "
                      "predictions) {\n";
    for (const MirOp &child : body.children)
        child.print(out, 1);
    out += "}\n";
    return out;
}

std::vector<const MirOp *>
MirFunction::walkOps() const
{
    std::vector<const MirOp *> out;
    body.collect(OpKind::kWalkGroup, out);
    return out;
}

std::vector<MirOp *>
MirFunction::walkOpsMutable()
{
    std::vector<MirOp *> out;
    body.collectMutable(OpKind::kWalkGroup, out);
    return out;
}

bool
MirFunction::isParallel() const
{
    std::vector<const MirOp *> loops;
    body.collect(OpKind::kParallelFor, loops);
    return !loops.empty();
}

namespace {

using analysis::DiagnosticEngine;
using analysis::IrLevel;

void
verifyOp(const MirOp &op, int32_t loop_depth, bool in_parallel,
         DiagnosticEngine &diag)
{
    bool is_loop =
        op.kind == OpKind::kFor || op.kind == OpKind::kParallelFor;
    if (is_loop) {
        if (op.inductionVar.empty() || op.lower.empty() ||
            op.upper.empty()) {
            diag.error(IrLevel::kMir, "mir.loop.malformed",
                       "loop is missing an induction variable or a "
                       "bound")
                .atOp(opKindName(op.kind));
        }
        if (op.step.empty() || op.step == "0") {
            diag.error(IrLevel::kMir, "mir.loop.step-zero",
                       "loop has a zero (or missing) step")
                .atOp(opKindName(op.kind));
        }
        if (op.kind == OpKind::kParallelFor && in_parallel) {
            diag.error(IrLevel::kMir, "mir.parallel.nested",
                       "parallel loop nested inside another parallel "
                       "loop")
                .atOp(opKindName(op.kind));
        }
    }
    if (op.kind == OpKind::kWalkGroup) {
        if (op.groupIndex < 0) {
            diag.error(IrLevel::kMir, "mir.walk.group-range",
                       "walk op without a group")
                .atOp(opKindName(op.kind));
        }
        if (op.interleave < 1) {
            diag.error(IrLevel::kMir, "mir.walk.interleave",
                       "walk op with interleave < 1")
                .atOp(opKindName(op.kind))
                .atGroup(op.groupIndex);
        }
        if (op.interleave > 1 &&
            op.interleaveAxis == InterleaveAxis::kNone) {
            diag.error(IrLevel::kMir, "mir.walk.interleave-axis",
                       "interleaved walk without an axis")
                .atOp(opKindName(op.kind))
                .atGroup(op.groupIndex);
        }
        if (op.unrolled && op.walkDepth < 1) {
            diag.error(IrLevel::kMir, "mir.walk.unroll-depth",
                       "unrolled walk with depth < 1")
                .atOp(opKindName(op.kind))
                .atGroup(op.groupIndex);
        }
        if (op.peelDepth < 0) {
            diag.error(IrLevel::kMir, "mir.walk.peel-depth",
                       "walk op with negative peel depth")
                .atOp(opKindName(op.kind))
                .atGroup(op.groupIndex);
        }
        if (loop_depth == 0) {
            diag.error(IrLevel::kMir, "mir.walk.no-loop",
                       "walk op outside any loop (no row to walk)")
                .atOp(opKindName(op.kind))
                .atGroup(op.groupIndex);
        }
    }
    for (const MirOp &child : op.children) {
        verifyOp(child, loop_depth + (is_loop ? 1 : 0),
                 in_parallel || op.kind == OpKind::kParallelFor, diag);
    }
}

} // namespace

void
MirFunction::verifyInto(analysis::DiagnosticEngine &diag) const
{
    if (body.kind != OpKind::kFunction) {
        diag.error(IrLevel::kMir, "mir.function.root",
                   "MIR function body must be a kFunction op")
            .atOp(opKindName(body.kind));
        return;
    }
    verifyOp(body, 0, false, diag);
    std::vector<const MirOp *> walks = walkOps();
    if (walks.empty())
        diag.error(IrLevel::kMir, "mir.walk.none",
                   "MIR function has no walk ops");
    std::vector<const MirOp *> outputs;
    body.collect(OpKind::kWriteOutput, outputs);
    if (outputs.empty())
        diag.error(IrLevel::kMir, "mir.output.missing",
                   "MIR function never writes its output");
}

void
MirFunction::verify() const
{
    analysis::DiagnosticEngine diag;
    diag.setPass("mir-verify");
    verifyInto(diag);
    diag.throwIfErrors();
}

} // namespace treebeard::mir
