/**
 * @file
 * HIR -> MIR lowering: make the loop nest over (tree, input row) pairs
 * explicit, in the order the schedule's loop-order attribute requests
 * (Section III-E; code snippets D and E of Figure 2).
 *
 * The initial lowering is deliberately unoptimized at the MIR level:
 * walks are emitted with interleave = 1 and no unroll/peel
 * annotations. The passes in passes.h then transform the function,
 * mirroring the paper's annotate-then-lower pipeline.
 */
#ifndef TREEBEARD_MIR_LOWERING_H
#define TREEBEARD_MIR_LOWERING_H

#include "hir/hir_module.h"
#include "mir/mir.h"

namespace treebeard::mir {

/** Lower @p module (HIR passes must have run) to a MIR function. */
MirFunction lowerToMir(const hir::HirModule &module);

/**
 * Run the standard MIR pass pipeline on @p function per its schedule:
 * walk interleaving (Section IV-A), walk peeling & unrolling
 * (Section IV-B), and row-loop parallelization (Section IV-C).
 */
void runMirPasses(MirFunction &function, const hir::HirModule &module);

} // namespace treebeard::mir

#endif // TREEBEARD_MIR_LOWERING_H
