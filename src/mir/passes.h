/**
 * @file
 * MIR optimization passes (Section IV).
 */
#ifndef TREEBEARD_MIR_PASSES_H
#define TREEBEARD_MIR_PASSES_H

#include "hir/hir_module.h"
#include "mir/mir.h"

namespace treebeard::mir {

/**
 * Tree walk interleaving (Section IV-A): unroll-and-jam the innermost
 * loop of the nest by @p factor and mark walk ops as interleaved over
 * the corresponding axis (rows for one-tree order, trees for one-row
 * order). No-op when factor == 1.
 */
void applyWalkInterleaving(MirFunction &function, int32_t factor);

/**
 * Tree walk peeling & unrolling (Section IV-B): annotate each walk op
 * with its group's unroll depth (balanced, padded groups) or peel
 * depth (generic groups), as recorded in the HIR module's groups.
 */
void applyWalkPeelingAndUnrolling(MirFunction &function,
                                  const hir::HirModule &module);

/**
 * Parallelization (Section IV-C): tile the row loop into numThreads
 * chunks and turn the outer loop into a parallel.for. No-op when
 * numThreads == 1.
 */
void applyParallelization(MirFunction &function, int32_t num_threads);

} // namespace treebeard::mir

#endif // TREEBEARD_MIR_PASSES_H
