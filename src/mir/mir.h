/**
 * @file
 * The mid-level IR (Section IV): an explicit loop nest over
 * (tree, input row) pairs with abstract tree-walk operations.
 * Operations at this level are independent of the final memory layout;
 * WalkDecisionTree "represents all valid ways to compute the
 * prediction of a decision tree given an input row".
 *
 * The structures here correspond to the code snippets D/E/F of
 * Figure 2 and the listings of Sections IV-A and IV-C. MIR is built by
 * lowering an HIR module (see lowering.h), transformed by the passes
 * in passes.h, and consumed by the runtime's plan builder (which plays
 * the role of LLVM JIT code generation).
 */
#ifndef TREEBEARD_MIR_MIR_H
#define TREEBEARD_MIR_MIR_H

#include <cstdint>
#include <string>
#include <vector>

#include "hir/schedule.h"

namespace treebeard::analysis {
class DiagnosticEngine;
} // namespace treebeard::analysis

namespace treebeard::mir {

/** Operation kinds of the mid-level IR. */
enum class OpKind {
    /** The predictForest function body. */
    kFunction,
    /** `parallel.for iv = lower to upper step step` (Section IV-C). */
    kParallelFor,
    /** `for iv = lower to upper step step`. */
    kFor,
    /** Initialize row accumulators with the model's base score. */
    kInitAccumulator,
    /**
     * WalkDecisionTree over the trees of one HIR group. interleave > 1
     * means `interleave` independent walks are jammed together
     * (InterleavedWalk, Section IV-A); `unrolled` means the walk is a
     * fixed sequence of `depth` traverseTile steps (Section IV-B);
     * otherwise `peelDepth` leading steps run without leaf checks.
     */
    kWalkGroup,
    /** Apply the objective transform and store predictions. */
    kWriteOutput,
};

const char *opKindName(OpKind kind);

/** What an interleaved walk jams together. */
enum class InterleaveAxis {
    kNone,
    /** Walks of the same tree over consecutive rows (one-tree order). */
    kRows,
    /** Walks of consecutive trees over the same row (one-row order). */
    kTrees,
};

/**
 * One MIR operation. A plain value-type tree: loop bounds are symbolic
 * strings (the batch size is a runtime value), walk attributes are
 * typed fields.
 */
struct MirOp
{
    OpKind kind = OpKind::kFunction;

    // Loop attributes (kParallelFor / kFor).
    std::string inductionVar;
    std::string lower;
    std::string upper;
    std::string step;

    // Walk attributes (kWalkGroup).
    int64_t groupIndex = -1;
    int32_t interleave = 1;
    InterleaveAxis interleaveAxis = InterleaveAxis::kNone;
    bool unrolled = false;
    int32_t walkDepth = 0;
    int32_t peelDepth = 0;

    std::vector<MirOp> children;

    /** Append a child and return a reference to it. */
    MirOp &addChild(MirOp op);

    /** Recursively find all ops of @p kind (pre-order). */
    void collect(OpKind kind, std::vector<const MirOp *> &out) const;
    void collectMutable(OpKind kind, std::vector<MirOp *> &out);

    /** Pretty-print this op and its children at @p indent. */
    void print(std::string &out, int indent) const;
};

/**
 * The MIR view of the predictForest function: the op tree plus the
 * schedule it was lowered under.
 */
struct MirFunction
{
    MirOp body; // kind == kFunction
    hir::Schedule schedule;

    /** Pretty-print the whole function. */
    std::string print() const;

    /** All walk ops in execution order. */
    std::vector<const MirOp *> walkOps() const;
    std::vector<MirOp *> walkOpsMutable();

    /** True when the row loop is parallelized. */
    bool isParallel() const;

    /**
     * Report structural violations (loop-nest well-formedness, walk
     * attribute ranges, missing output) into @p diag. Never throws;
     * codes are "mir.*".
     */
    void verifyInto(analysis::DiagnosticEngine &diag) const;

    /**
     * Structural sanity checks; throws a recoverable
     * analysis::VerificationError (a treebeard::Error) listing every
     * violation with pass provenance "mir-verify".
     */
    void verify() const;
};

} // namespace treebeard::mir

#endif // TREEBEARD_MIR_MIR_H
