#include "mir/lowering.h"

#include "common/logging.h"
#include "mir/passes.h"

namespace treebeard::mir {

namespace {

MirOp
makeFor(const std::string &iv, const std::string &lower,
        const std::string &upper, const std::string &step)
{
    MirOp op;
    op.kind = OpKind::kFor;
    op.inductionVar = iv;
    op.lower = lower;
    op.upper = upper;
    op.step = step;
    return op;
}

MirOp
makeWalk(int64_t group_index)
{
    MirOp op;
    op.kind = OpKind::kWalkGroup;
    op.groupIndex = group_index;
    return op;
}

} // namespace

MirFunction
lowerToMir(const hir::HirModule &module)
{
    fatalIf(module.groups().empty(),
            "MIR lowering requires the HIR passes to have run");

    MirFunction function;
    function.schedule = module.schedule();
    function.body.kind = OpKind::kFunction;

    const std::vector<hir::TreeGroup> &groups = module.groups();

    if (module.schedule().loopOrder == hir::LoopOrder::kOneTreeAtATime) {
        // Snippet E of Figure 2: walk one tree for all rows, then the
        // next tree. Accumulators live across the whole batch.
        MirOp init;
        init.kind = OpKind::kInitAccumulator;
        function.body.addChild(init);

        for (size_t g = 0; g < groups.size(); ++g) {
            MirOp tree_loop =
                makeFor("t", std::to_string(groups[g].beginPos),
                        std::to_string(groups[g].endPos), "1");
            MirOp row_loop = makeFor("r", "0", "numRows", "1");
            row_loop.addChild(makeWalk(static_cast<int64_t>(g)));
            tree_loop.addChild(std::move(row_loop));
            function.body.addChild(std::move(tree_loop));
        }

        MirOp output;
        output.kind = OpKind::kWriteOutput;
        function.body.addChild(output);
    } else {
        // Snippet D of Figure 2: walk all trees for one row, then the
        // next row. One scalar accumulator per row.
        MirOp row_loop = makeFor("r", "0", "numRows", "1");
        MirOp init;
        init.kind = OpKind::kInitAccumulator;
        row_loop.addChild(init);

        for (size_t g = 0; g < groups.size(); ++g) {
            MirOp tree_loop =
                makeFor("t", std::to_string(groups[g].beginPos),
                        std::to_string(groups[g].endPos), "1");
            tree_loop.addChild(makeWalk(static_cast<int64_t>(g)));
            row_loop.addChild(std::move(tree_loop));
        }

        MirOp output;
        output.kind = OpKind::kWriteOutput;
        row_loop.addChild(output);
        function.body.addChild(std::move(row_loop));
    }

    return function;
}

void
runMirPasses(MirFunction &function, const hir::HirModule &module)
{
    const hir::Schedule &schedule = function.schedule;
    applyWalkPeelingAndUnrolling(function, module);
    applyWalkInterleaving(function, schedule.interleaveFactor);
    applyParallelization(function, schedule.numThreads);
    function.verify();
}

} // namespace treebeard::mir
