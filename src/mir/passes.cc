#include "mir/passes.h"

#include <functional>

#include "common/logging.h"

namespace treebeard::mir {

namespace {

/**
 * Visit every loop that directly wraps a walk op (the innermost loops
 * of the nest) and apply @p transform(loop).
 */
void
forEachInnermostLoop(MirOp &op, const std::function<void(MirOp &)> &fn)
{
    bool wraps_walk = false;
    for (const MirOp &child : op.children) {
        if (child.kind == OpKind::kWalkGroup)
            wraps_walk = true;
    }
    if ((op.kind == OpKind::kFor || op.kind == OpKind::kParallelFor) &&
        wraps_walk) {
        fn(op);
        return;
    }
    for (MirOp &child : op.children)
        forEachInnermostLoop(child, fn);
}

} // namespace

void
applyWalkInterleaving(MirFunction &function, int32_t factor)
{
    fatalIf(factor < 1, "interleave factor must be positive");
    if (factor == 1)
        return;

    forEachInnermostLoop(function.body, [factor](MirOp &loop) {
        // Unroll-and-jam: the loop now advances `factor` iterations at
        // a time, and the walks it wraps become interleaved walks over
        // that axis.
        loop.step = std::to_string(factor);
        InterleaveAxis axis = loop.inductionVar == "r"
                                  ? InterleaveAxis::kRows
                                  : InterleaveAxis::kTrees;
        for (MirOp &child : loop.children) {
            if (child.kind != OpKind::kWalkGroup)
                continue;
            child.interleave = factor;
            child.interleaveAxis = axis;
        }
    });
}

void
applyWalkPeelingAndUnrolling(MirFunction &function,
                             const hir::HirModule &module)
{
    const std::vector<hir::TreeGroup> &groups = module.groups();
    for (MirOp *walk : function.walkOpsMutable()) {
        fatalIf(walk->groupIndex < 0 ||
                    walk->groupIndex >=
                        static_cast<int64_t>(groups.size()),
                "walk op references unknown group ", walk->groupIndex);
        const hir::TreeGroup &group =
            groups[static_cast<size_t>(walk->groupIndex)];
        walk->unrolled = group.unrolledWalk;
        walk->walkDepth = group.walkDepth;
        walk->peelDepth = group.peelDepth;
    }
}

void
applyParallelization(MirFunction &function, int32_t num_threads)
{
    fatalIf(num_threads < 1, "thread count must be positive");
    if (num_threads == 1)
        return;

    // Tile the row loop: chunk = ceil(numRows / numThreads), and run
    // chunks under a parallel.for (the Section IV-C structure).
    MirOp parallel;
    parallel.kind = OpKind::kParallelFor;
    parallel.inductionVar = "i0";
    parallel.lower = "0";
    parallel.upper = "numRows";
    parallel.step =
        "ceil(numRows/" + std::to_string(num_threads) + ")";
    parallel.children = std::move(function.body.children);
    function.body.children.clear();

    // Inner row loops now range over the chunk.
    std::function<void(MirOp &)> retarget = [&](MirOp &op) {
        if (op.kind == OpKind::kFor && op.inductionVar == "r") {
            op.lower = "i0";
            op.upper = "min(i0+chunk, numRows)";
        }
        for (MirOp &child : op.children)
            retarget(child);
    };
    retarget(parallel);

    function.body.addChild(std::move(parallel));
}

} // namespace treebeard::mir
