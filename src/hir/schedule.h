/**
 * @file
 * The schedule: the set of attributes decided at the high-level IR
 * that steer all later lowering (Section II: "tree tiling and loop
 * ordering are decided at the highest abstraction ... communicated to
 * the lowering pass"). One Schedule value describes one point of the
 * optimization space of Table II.
 */
#ifndef TREEBEARD_HIR_SCHEDULE_H
#define TREEBEARD_HIR_SCHEDULE_H

#include <cstdint>
#include <string>

#include "hir/tiling.h"

namespace treebeard::analysis {
class DiagnosticEngine;
} // namespace treebeard::analysis

namespace treebeard::hir {

/** Loop-nest order over (tree, input row) pairs (Section III-E). */
enum class LoopOrder {
    /** Walk one tree for all rows before the next tree. */
    kOneTreeAtATime,
    /** Walk all trees for a row before the next row. */
    kOneRowAtATime,
};

const char *loopOrderName(LoopOrder order);

/** In-memory representation of tiled trees (Section V-B). */
enum class MemoryLayout {
    /** Implicit (n_t+1)-ary array; fast for small models, bloats. */
    kArray,
    /** Child pointers + separate leaf array; compact. */
    kSparse,
    /**
     * Cache-line-packed AoS: the sparse topology with each tile's
     * thresholds, int16 feature indices, shape id, child base and
     * default-direction bits fused into one aligned record, so a tile
     * visit touches one cache line instead of ~5. Requires feature
     * indices to fit in int16 (< 32768 features); larger models fall
     * back to the sparse layout.
     */
    kPacked,
};

const char *memoryLayoutName(MemoryLayout layout);

/**
 * Threshold precision of the packed layout's tile records. kI16
 * narrows thresholds to int16 under a per-feature affine scale (and
 * feature indices to uint8), halving the tile-size-8 record to 32
 * bytes — two tiles per cache line — at the cost of a per-model
 * quantization error budget reported by the layout builder. Ignored
 * by the array and sparse layouts. Models with >= 256 features fall
 * back to f32 packed records.
 */
enum class PackedPrecision {
    kF32,
    kI16,
};

const char *packedPrecisionName(PackedPrecision precision);

/**
 * SIMD traversal shape of the lowered walkers (orthogonal to
 * MemoryLayout and PackedPrecision — the buffers are identical under
 * both kinds).
 *
 *  - kNodeParallel vectorizes *within* one tile: an AVX2 gather /
 *    compare over the tile's 4-8 slots decides one row's step.
 *  - kRowParallel vectorizes *across* rows: 8 rows walk one tree in
 *    lockstep, one __m256 lane per row, with per-step feature gathers
 *    from the row block, compare-mask blends selecting each lane's
 *    child and a done-mask retiring lanes that reached a leaf. This is
 *    the FIL-style shape; it wins on shallow/wide forests at large
 *    batch sizes, where the amortized tile fetch dominates.
 *
 * Row-parallel traversal forces a tree-major execution order
 * internally (a lane group walks one tree at a time), so loopOrder is
 * ignored under kRowParallel. Predictions are bit-identical between
 * the two kinds on both backends: per-row accumulation still sums the
 * same leaf values in the same tree order.
 */
enum class TraversalKind {
    kNodeParallel,
    kRowParallel,
};

const char *traversalKindName(TraversalKind traversal);

/**
 * Maximum supported tile size. Kept in sync with
 * lir::kMaxTileSize (asserted by the LIR); the limit exists because
 * comparison outcomes are packed into one byte per tile.
 */
constexpr int32_t kMaxScheduleTileSize = 8;

/**
 * Exclusive-inclusive upper bound on Schedule::rowChunkRows. Chunks
 * above 4M rows cannot load-balance anything (they exceed any batch
 * this runtime targets) and are always a typo'd CLI/JSON value, so
 * schedule verification rejects them up front instead of letting the
 * runtime silently run single-chunk.
 */
constexpr int32_t kMaxRowChunkRows = 1 << 22;

/**
 * All compilation knobs. Defaults correspond to the configuration the
 * paper reports as broadly best on Intel (tile size 8, sparse layout,
 * interleave 8, padding + unrolling enabled, hybrid tiling).
 */
struct Schedule
{
    LoopOrder loopOrder = LoopOrder::kOneTreeAtATime;
    int32_t tileSize = 8;
    TilingAlgorithm tiling = TilingAlgorithm::kHybrid;
    /** Leaf-bias gate parameters for hybrid tiling. */
    double alpha = 0.075;
    double beta = 0.9;
    /**
     * Pad (almost balanced) tiled trees with dummy tiles and fully
     * unroll their walks (Sections III-F, IV-B).
     */
    bool padAndUnrollWalks = true;
    /**
     * Peel the first minLeafDepth steps of generic walks so they run
     * without termination checks (Section IV-B).
     */
    bool peelWalks = true;
    /**
     * Maximum depth imbalance (maxLeafDepth - minLeafDepth) a tiled
     * tree may have and still be padded for unrolling.
     */
    int32_t padDepthSlack = 2;
    /** Unroll-and-jam factor for tree walk interleaving (1 = off). */
    int32_t interleaveFactor = 1;
    MemoryLayout layout = MemoryLayout::kSparse;
    /** Packed-layout threshold precision (see PackedPrecision). */
    PackedPrecision packedPrecision = PackedPrecision::kF32;
    /** SIMD traversal shape (see TraversalKind). */
    TraversalKind traversal = TraversalKind::kNodeParallel;
    /**
     * Software-pipeline the packed interleaved walkers: load tile
     * k+1's child base while evaluating tile k, instead of relying on
     * prefetch hints. Off is useful for A/B benchmarking only.
     */
    bool pipelinePackedWalks = true;
    /** Worker threads for the parallelized row loop (1 = serial). */
    int32_t numThreads = 1;
    /**
     * Rows per chunk of the parallel row loop (both backends; the
     * source backend bakes the value into the emitted translation
     * unit's worker loop). 0 picks one contiguous chunk per worker,
     * ceil(rows / numThreads) — the paper's row-loop tiling. Positive
     * values force smaller chunks, which load-balances skewed batches
     * at the cost of more scheduling steps. Ignored when numThreads
     * is 1.
     */
    int32_t rowChunkRows = 0;
    /**
     * Promise that input rows never contain NaN. Lets models without
     * per-node default directions use slightly faster kernels that
     * skip missing-value routing (the paper's setting — it does not
     * consider missing values at all). With NaN inputs under this
     * flag, predictions are unspecified but memory-safe. Ignored
     * (missing-value handling stays on) when the model carries
     * default directions.
     */
    bool assumeNoMissingValues = false;
    /**
     * Fraction of training hits the per-tree branchless hot path must
     * cover (Section III-B2's probability skew, spent on code shape
     * instead of tile shape). 0 disables hot-path emission; positive
     * values select the minimal root subtree of each tiled tree whose
     * leaves absorb at least this probability mass and compile it to
     * straight-line immediate-operand comparisons, falling through to
     * the tiled walkers when a row exits the region. Trees without
     * recorded hit statistics fall back to depth-based selection (a
     * hir.hotpath.no-stats note is emitted).
     */
    double hotPathCoverage = 0.0;

    /**
     * Report every out-of-range knob into @p diag ("schedule.*"
     * codes). Never throws.
     */
    void verifyInto(analysis::DiagnosticEngine &diag) const;

    /**
     * Throws a recoverable analysis::VerificationError (a
     * treebeard::Error) listing every out-of-range knob.
     */
    void validate() const;

    /** A compact human-readable description, for logs and tuners. */
    std::string toString() const;
};

/**
 * Schedule (de)serialization, for persisting tuner results and for
 * the CLI. The round trip preserves every knob.
 */
std::string scheduleToJsonString(const Schedule &schedule);
Schedule scheduleFromJsonString(const std::string &text);

} // namespace treebeard::hir

#endif // TREEBEARD_HIR_SCHEDULE_H
