#include "hir/hot_path.h"

#include <functional>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "hir/tiling.h"

namespace treebeard::hir {

namespace {

/**
 * In-tile links of one internal tile plus the exit ordinal of every
 * exiting edge, precomputed with the same left-to-right depth-first
 * order the tile-shape LUT uses (see exitOrdinal in tiled_tree.cc).
 */
struct TileLinks
{
    std::vector<int32_t> left;
    std::vector<int32_t> right;
    /** Exit ordinal of (slot, side), or -1 when the edge stays in-tile. */
    std::vector<int32_t> exitLeft;
    std::vector<int32_t> exitRight;
};

TileLinks
computeTileLinks(const TiledTree &tiled, TileId id)
{
    TileLinks links;
    tiled.tileSlotLinks(id, links.left, links.right);
    links.exitLeft.assign(links.left.size(), -1);
    links.exitRight.assign(links.right.size(), -1);
    int32_t ordinal = 0;
    auto visit = [&](auto &&self, int32_t slot) -> void {
        if (links.left[static_cast<size_t>(slot)] < 0)
            links.exitLeft[static_cast<size_t>(slot)] = ordinal++;
        else
            self(self, links.left[static_cast<size_t>(slot)]);
        if (links.right[static_cast<size_t>(slot)] < 0)
            links.exitRight[static_cast<size_t>(slot)] = ordinal++;
        else
            self(self, links.right[static_cast<size_t>(slot)]);
    };
    visit(visit, 0);
    return links;
}

} // namespace

std::vector<double>
tileReachProbabilities(const TiledTree &tiled)
{
    std::vector<double> node_probability =
        nodeProbabilities(tiled.baseTree());
    std::vector<double> result(
        static_cast<size_t>(tiled.numTiles()), 0.0);
    for (TileId id = 0; id < tiled.numTiles(); ++id) {
        const Tile &tile = tiled.tile(id);
        if (!tile.nodes.empty()) {
            result[static_cast<size_t>(id)] =
                node_probability[static_cast<size_t>(tile.nodes[0])];
        }
    }
    // Dummy internal tiles deterministically continue to child 0:
    // inherit the chain's terminal probability. Dummy-leaf fillers are
    // unreachable and stay at 0.
    for (TileId id = 0; id < tiled.numTiles(); ++id) {
        if (tiled.tile(id).kind != Tile::Kind::kDummyInternal)
            continue;
        TileId current = id;
        while (tiled.tile(current).kind == Tile::Kind::kDummyInternal)
            current = tiled.tile(current).children[0];
        result[static_cast<size_t>(id)] =
            result[static_cast<size_t>(current)];
    }
    return result;
}

HotPathProgram
buildHotPathProgram(const TiledTree &tiled, double coverage,
                    int32_t node_budget)
{
    HotPathProgram program;
    if (coverage <= 0.0 || tiled.numTiles() == 0)
        return program;

    const model::DecisionTree &tree = tiled.baseTree();
    bool has_stats = false;
    for (model::NodeIndex leaf : tree.leafIndices()) {
        if (tree.node(leaf).hitCount > 0.0) {
            has_stats = true;
            break;
        }
    }
    program.depthFallback = !has_stats;

    std::vector<double> probability = tileReachProbabilities(tiled);

    // Greedy region growth: expand the frontier tile with the largest
    // reach probability (or, without statistics, the shallowest tile,
    // which under uniform leaf probabilities is the same objective).
    // Leaf-kind children of a selected tile join the region for free —
    // they cost no comparisons and resolve an outcome in-region.
    auto key = [&](TileId id) -> double {
        return has_stats
                   ? probability[static_cast<size_t>(id)]
                   : -static_cast<double>(tiled.tileDepth(id));
    };
    std::priority_queue<std::pair<double, int32_t>> frontier;
    std::vector<char> selected(
        static_cast<size_t>(tiled.numTiles()), 0);
    double covered = 0.0;
    int32_t nodes_used = 0;
    auto admit = [&](TileId id) {
        if (tiled.tile(id).isLeafKind()) {
            selected[static_cast<size_t>(id)] = 1;
            covered += probability[static_cast<size_t>(id)];
        } else {
            frontier.push({key(id), -id});
        }
    };
    admit(tiled.rootTile());
    while (covered < coverage - 1e-12 && !frontier.empty()) {
        TileId id = static_cast<TileId>(-frontier.top().second);
        frontier.pop();
        int32_t cost = tiled.tile(id).numNodes();
        if (nodes_used + cost > node_budget)
            break;
        nodes_used += cost;
        selected[static_cast<size_t>(id)] = 1;
        for (TileId child : tiled.tile(id).children)
            admit(child);
    }
    program.hotCoverage = covered;

    // Flatten the region to a preorder straight-line program. Selected
    // dummy internal chains are transparent (they deterministically
    // continue to child 0); leaf-kind tiles resolve inline; everything
    // else becomes a cold exit at the first unselected tile, which the
    // layout builders always materialize as a walker entry.
    std::vector<TileLinks> links(static_cast<size_t>(tiled.numTiles()));
    std::vector<char> links_ready(
        static_cast<size_t>(tiled.numTiles()), 0);
    auto linksFor = [&](TileId id) -> const TileLinks & {
        if (!links_ready[static_cast<size_t>(id)]) {
            links[static_cast<size_t>(id)] =
                computeTileLinks(tiled, id);
            links_ready[static_cast<size_t>(id)] = 1;
        }
        return links[static_cast<size_t>(id)];
    };
    auto addOutcome = [&](HotPathProgram::Outcome outcome) -> int32_t {
        program.outcomes.push_back(outcome);
        return -static_cast<int32_t>(program.outcomes.size());
    };
    std::function<int32_t(TileId, int32_t)> emitNode;
    std::function<int32_t(TileId)> resolveTile =
        [&](TileId id) -> int32_t {
        while (tiled.tile(id).kind == Tile::Kind::kDummyInternal &&
               selected[static_cast<size_t>(id)]) {
            id = tiled.tile(id).children[0];
        }
        const Tile &tile = tiled.tile(id);
        if (selected[static_cast<size_t>(id)]) {
            if (tile.isLeafKind()) {
                return addOutcome(
                    {true, tile.leafValue, kNoTile,
                     probability[static_cast<size_t>(id)]});
            }
            return emitNode(id, 0);
        }
        panicIf(tile.isLeafKind(),
                "hot-path exit edge lands on an unselected leaf tile");
        return addOutcome(
            {false, 0.0f, id, probability[static_cast<size_t>(id)]});
    };
    emitNode = [&](TileId id, int32_t slot) -> int32_t {
        const Tile &tile = tiled.tile(id);
        const TileLinks &l = linksFor(id);
        int32_t index = static_cast<int32_t>(program.nodes.size());
        program.nodes.push_back(
            {tile.nodes[static_cast<size_t>(slot)], 0, 0});
        int32_t left_link = l.left[static_cast<size_t>(slot)];
        int32_t left_ref =
            left_link >= 0
                ? emitNode(id, left_link)
                : resolveTile(tile.children[static_cast<size_t>(
                      l.exitLeft[static_cast<size_t>(slot)])]);
        int32_t right_link = l.right[static_cast<size_t>(slot)];
        int32_t right_ref =
            right_link >= 0
                ? emitNode(id, right_link)
                : resolveTile(tile.children[static_cast<size_t>(
                      l.exitRight[static_cast<size_t>(slot)])]);
        program.nodes[static_cast<size_t>(index)].left = left_ref;
        program.nodes[static_cast<size_t>(index)].right = right_ref;
        return index;
    };

    int32_t root_ref = resolveTile(tiled.rootTile());
    panicIf(!program.nodes.empty() && root_ref != 0,
            "hot-path flattening did not start at node 0");
    return program;
}

} // namespace treebeard::hir
