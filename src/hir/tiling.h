/**
 * @file
 * The tree tiling pass of the high-level IR: basic tiling
 * (Algorithm 2), greedy probability-based tiling (Algorithm 1), and
 * the hybrid policy that applies probability-based tiling only to
 * leaf-biased trees (Section III-C).
 */
#ifndef TREEBEARD_HIR_TILING_H
#define TREEBEARD_HIR_TILING_H

#include <cstdint>

#include "hir/tiled_tree.h"
#include "model/forest.h"

namespace treebeard::hir {

/** Which tiling heuristic to run. */
enum class TilingAlgorithm {
    /** Algorithm 2: level-order tiles, minimizes tile depths. */
    kBasic,
    /** Algorithm 1: greedy expected-depth minimization. */
    kProbabilityBased,
    /**
     * Probability-based tiling on leaf-biased trees (per the
     * (alpha, beta) test), basic tiling elsewhere — the configuration
     * evaluated in Figure 11a.
     */
    kHybrid,
    /**
     * Greedy minimization of the maximum tiled leaf depth (one of the
     * tiling variants Section III-B2 leaves to future work): tiles
     * absorb the out-neighbor with the tallest subtree, compressing
     * the longest root-to-leaf paths.
     */
    kMinMaxDepth,
};

const char *tilingAlgorithmName(TilingAlgorithm algorithm);

/** Parameters of the tiling pass. */
struct TilingOptions
{
    TilingAlgorithm algorithm = TilingAlgorithm::kBasic;
    int32_t tileSize = 4;
    /** Leaf-bias gate (Section III-C): fraction of leaves... */
    double alpha = 0.075;
    /** ...covering this fraction of training hits. */
    double beta = 0.9;
};

/**
 * Per-node reach probabilities of @p tree (internal nodes included):
 * leaf entries come from leafProbabilities(), internal entries are the
 * post-order sums of their subtrees, so the root carries 1. Shared by
 * probability-based tiling and hot-path selection.
 */
std::vector<double> nodeProbabilities(const model::DecisionTree &tree);

/**
 * Tile @p tree with Algorithm 2 (basic, level-order traversal tiles).
 * The returned tiling is valid per Section III-B1.
 */
TiledTree basicTiling(const model::DecisionTree &tree, int32_t tile_size);

/**
 * Tile @p tree with Algorithm 1 (greedy probability-based): grow each
 * tile from its root by repeatedly absorbing the highest-probability
 * out-edge destination. Uses the tree's recorded hit counts; falls
 * back to uniform leaf probabilities when none exist.
 */
TiledTree probabilityBasedTiling(const model::DecisionTree &tree,
                                 int32_t tile_size);

/**
 * Tile @p tree greedily minimizing the maximum tiled leaf depth: each
 * tile repeatedly absorbs the out-edge destination whose subtree is
 * tallest.
 */
TiledTree minMaxDepthTiling(const model::DecisionTree &tree,
                            int32_t tile_size);

/** Tile @p tree per @p options (dispatches on the algorithm/gate). */
TiledTree tileTree(const model::DecisionTree &tree,
                   const TilingOptions &options);

} // namespace treebeard::hir

#endif // TREEBEARD_HIR_TILING_H
