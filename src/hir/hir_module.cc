#include "hir/hir_module.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "model/model_stats.h"

namespace treebeard::hir {

HirModule::HirModule(model::Forest forest, Schedule schedule)
    : forest_(std::move(forest)), schedule_(schedule)
{
    schedule_.validate();
    forest_.validate();
    treeOrder_.resize(static_cast<size_t>(forest_.numTrees()));
    std::iota(treeOrder_.begin(), treeOrder_.end(), 0);
}

const TiledTree &
HirModule::tiledTree(int64_t tree_id) const
{
    panicIf(!isTiled(), "tiling pass has not run");
    panicIf(tree_id < 0 || tree_id >= forest_.numTrees(),
            "tree id out of range");
    return tiledTrees_[static_cast<size_t>(tree_id)];
}

TilingAlgorithm
HirModule::appliedTiling(int64_t tree_id) const
{
    panicIf(!isTiled(), "tiling pass has not run");
    return appliedTiling_[static_cast<size_t>(tree_id)];
}

void
HirModule::runTilingPass()
{
    tiledTrees_.clear();
    appliedTiling_.clear();
    tiledTrees_.reserve(static_cast<size_t>(forest_.numTrees()));

    TilingOptions options;
    options.tileSize = schedule_.tileSize;
    options.alpha = schedule_.alpha;
    options.beta = schedule_.beta;

    for (int64_t t = 0; t < forest_.numTrees(); ++t) {
        const model::DecisionTree &tree = forest_.tree(t);
        TilingAlgorithm applied = schedule_.tiling;
        if (schedule_.tiling == TilingAlgorithm::kHybrid) {
            applied = model::isLeafBiased(tree, schedule_.alpha,
                                          schedule_.beta)
                          ? TilingAlgorithm::kProbabilityBased
                          : TilingAlgorithm::kBasic;
        }
        options.algorithm = applied;
        tiledTrees_.push_back(tileTree(tree, options));
        appliedTiling_.push_back(applied);
    }
}

void
HirModule::runReorderPass()
{
    fatalIf(!isTiled(), "reorder pass requires the tiling pass");
    groups_.clear();

    int64_t num_trees = forest_.numTrees();
    std::vector<bool> unrollable(static_cast<size_t>(num_trees), false);

    if (schedule_.padAndUnrollWalks) {
        // Pad almost-balanced trees (basic tiling produces these) so
        // their walks can be fully unrolled.
        for (int64_t t = 0; t < num_trees; ++t) {
            TiledTree &tiled = tiledTrees_[static_cast<size_t>(t)];
            int32_t imbalance =
                tiled.maxLeafDepth() - tiled.minLeafDepth();
            // Single-leaf trees have no walk to unroll.
            if (imbalance <= schedule_.padDepthSlack &&
                tiled.maxLeafDepth() >= 1) {
                if (imbalance > 0)
                    tiled.padToDepth(tiled.maxLeafDepth());
                unrollable[static_cast<size_t>(t)] = true;
            }
        }

        // Sort execution order: unrolled trees first, by walk depth,
        // so trees sharing one unrolled body are adjacent; generic
        // trees afterwards by peel (min leaf) depth.
        std::sort(treeOrder_.begin(), treeOrder_.end(),
                  [this, &unrollable](int64_t a, int64_t b) {
                      const TiledTree &ta =
                          tiledTrees_[static_cast<size_t>(a)];
                      const TiledTree &tb =
                          tiledTrees_[static_cast<size_t>(b)];
                      bool ua = unrollable[static_cast<size_t>(a)];
                      bool ub = unrollable[static_cast<size_t>(b)];
                      if (ua != ub)
                          return ua > ub;
                      int32_t ka = ua ? ta.maxLeafDepth()
                                      : ta.minLeafDepth();
                      int32_t kb = ub ? tb.maxLeafDepth()
                                      : tb.minLeafDepth();
                      if (ka != kb)
                          return ka < kb;
                      return a < b;
                  });
    }

    // Form groups of consecutive positions with identical walk keys.
    auto key_of = [this, &unrollable](int64_t tree_id) {
        const TiledTree &tiled =
            tiledTrees_[static_cast<size_t>(tree_id)];
        bool unrolled = schedule_.padAndUnrollWalks &&
                        unrollable[static_cast<size_t>(tree_id)];
        int32_t depth = unrolled ? tiled.maxLeafDepth()
                                 : tiled.minLeafDepth();
        return std::make_pair(unrolled, depth);
    };

    int64_t position = 0;
    while (position < num_trees) {
        auto key = key_of(treeOrder_[static_cast<size_t>(position)]);
        int64_t end = position + 1;
        while (end < num_trees &&
               key_of(treeOrder_[static_cast<size_t>(end)]) == key) {
            ++end;
        }
        TreeGroup group;
        group.beginPos = position;
        group.endPos = end;
        group.unrolledWalk = key.first;
        group.walkDepth = key.first ? key.second : 0;
        group.peelDepth =
            (!key.first && schedule_.peelWalks) ? key.second : 0;
        groups_.push_back(group);
        position = end;
    }
}

void
HirModule::runAllHirPasses()
{
    runTilingPass();
    runReorderPass();
}

void
HirModule::validateTiling() const
{
    fatalIf(!isTiled(), "tiling pass has not run");
    for (const TiledTree &tiled : tiledTrees_)
        tiled.validate();
}

std::string
HirModule::dump() const
{
    std::ostringstream os;
    os << "hir.module {\n";
    os << "  schedule: " << schedule_.toString() << "\n";
    os << "  forest: " << forest_.numTrees() << " trees, "
       << forest_.numFeatures() << " features, objective "
       << model::objectiveName(forest_.objective()) << "\n";
    if (isTiled()) {
        for (int64_t t = 0; t < forest_.numTrees(); ++t) {
            const TiledTree &tiled =
                tiledTrees_[static_cast<size_t>(t)];
            os << "  tree " << t << ": "
               << tilingAlgorithmName(
                      appliedTiling_[static_cast<size_t>(t)])
               << " tiling, " << tiled.numTiles() << " tiles, depth ["
               << tiled.minLeafDepth() << ", " << tiled.maxLeafDepth()
               << "]\n";
        }
    }
    if (!groups_.empty()) {
        for (size_t g = 0; g < groups_.size(); ++g) {
            const TreeGroup &group = groups_[g];
            os << "  group " << g << ": positions [" << group.beginPos
               << ", " << group.endPos << ")"
               << (group.unrolledWalk
                       ? " unrolled depth " +
                             std::to_string(group.walkDepth)
                       : " generic peel " +
                             std::to_string(group.peelDepth))
               << "\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace treebeard::hir
