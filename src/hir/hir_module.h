/**
 * @file
 * The high-level IR module: the forest plus per-tree tiled views, the
 * execution order of trees, tree groups that share traversal code, and
 * the schedule attributes that steer lowering. HIR passes (tiling,
 * reordering/padding) transform this module in place.
 */
#ifndef TREEBEARD_HIR_HIR_MODULE_H
#define TREEBEARD_HIR_HIR_MODULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "hir/schedule.h"
#include "hir/tiled_tree.h"
#include "model/forest.h"

namespace treebeard::hir {

/**
 * A run of consecutive positions in the tree execution order whose
 * trees share one traversal-code body (Section III-F). For unrolled
 * groups every member is perfectly balanced at walkDepth, so the walk
 * is exactly walkDepth traverseTile steps with no termination checks.
 */
struct TreeGroup
{
    /** Positions [beginPos, endPos) into HirModule::treeOrder(). */
    int64_t beginPos = 0;
    int64_t endPos = 0;
    /** For unrolled groups: the exact walk depth of every member. */
    int32_t walkDepth = 0;
    /** Whether the group's walk is fully unrolled (no leaf checks). */
    bool unrolledWalk = false;
    /** For generic groups: steps peeled to run without leaf checks. */
    int32_t peelDepth = 0;

    int64_t size() const { return endPos - beginPos; }
};

/**
 * The HIR module. Owns a copy of the forest (tiled trees reference its
 * trees, so the module must outlive everything lowered from it).
 */
class HirModule
{
  public:
    /**
     * Create a module for @p forest under @p schedule. The forest is
     * copied; the schedule is validated. Trees start untiled in
     * original order with no groups: run the passes (or
     * runAllHirPasses()) to populate them.
     */
    HirModule(model::Forest forest, Schedule schedule);

    const model::Forest &forest() const { return forest_; }
    const Schedule &schedule() const { return schedule_; }

    bool isTiled() const { return !tiledTrees_.empty(); }
    const TiledTree &tiledTree(int64_t tree_id) const;
    const std::vector<TiledTree> &tiledTrees() const { return tiledTrees_; }

    /** Tiling algorithm actually applied to each tree (hybrid gate). */
    TilingAlgorithm appliedTiling(int64_t tree_id) const;

    /** Execution order: position -> original tree id. */
    const std::vector<int64_t> &treeOrder() const { return treeOrder_; }

    /** Code-sharing groups over positions; covers all positions. */
    const std::vector<TreeGroup> &groups() const { return groups_; }

    /** Human-readable dump of the module (for tests and debugging). */
    std::string dump() const;

    // Pass entry points (order matters: tiling, then reordering).

    /**
     * Tiling pass: tile every tree per the schedule (Section III-B).
     * Records which algorithm the hybrid gate applied to each tree.
     */
    void runTilingPass();

    /**
     * Reorder pass (Section III-F): pad almost-balanced tiled trees to
     * uniform depth, sort trees so structurally compatible ones are
     * adjacent, and form code-sharing groups. Requires the tiling
     * pass. When the schedule disables padAndUnrollWalks, trees keep
     * their original order and form generic groups by peel depth.
     */
    void runReorderPass();

    /** Run tiling then reordering. */
    void runAllHirPasses();

    /** Validate all tiled trees (invariants of Section III-B1). */
    void validateTiling() const;

  private:
    model::Forest forest_;
    Schedule schedule_;
    std::vector<TiledTree> tiledTrees_;
    std::vector<TilingAlgorithm> appliedTiling_;
    std::vector<int64_t> treeOrder_;
    std::vector<TreeGroup> groups_;
};

} // namespace treebeard::hir

#endif // TREEBEARD_HIR_HIR_MODULE_H
