#include "hir/tiling.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <set>

#include "common/logging.h"
#include "model/model_stats.h"

namespace treebeard::hir {

const char *
tilingAlgorithmName(TilingAlgorithm algorithm)
{
    switch (algorithm) {
      case TilingAlgorithm::kBasic: return "basic";
      case TilingAlgorithm::kProbabilityBased: return "probability";
      case TilingAlgorithm::kHybrid: return "hybrid";
      case TilingAlgorithm::kMinMaxDepth: return "min-max-depth";
    }
    panic("unknown tiling algorithm");
}

namespace {

using model::DecisionTree;
using model::NodeIndex;

/**
 * A node-set selector: given the root of an (untiled) subtree whose
 * root is an internal node, return the set of internal nodes forming
 * the tile rooted there. Both tiling algorithms are instances.
 */
using TileSelector = std::function<std::set<NodeIndex>(NodeIndex)>;

/** BFS order the members of @p members starting from @p tile_root. */
std::vector<NodeIndex>
levelOrderTileNodes(const DecisionTree &tree, NodeIndex tile_root,
                    const std::set<NodeIndex> &members)
{
    std::vector<NodeIndex> ordered;
    std::queue<NodeIndex> queue;
    queue.push(tile_root);
    while (!queue.empty()) {
        NodeIndex node = queue.front();
        queue.pop();
        if (members.count(node) == 0)
            continue;
        ordered.push_back(node);
        const model::Node &n = tree.node(node);
        if (!n.isLeaf()) {
            queue.push(n.left);
            queue.push(n.right);
        }
    }
    panicIf(ordered.size() != members.size(),
            "tile node set is not connected under its root");
    return ordered;
}

/**
 * Exit targets of a tile in left-to-right (DFS) order: the base nodes
 * reached by edges leaving the tile. Matches the exit-ordinal order of
 * the tile-shape LUT.
 */
std::vector<NodeIndex>
exitTargetsInOrder(const DecisionTree &tree, NodeIndex tile_root,
                   const std::set<NodeIndex> &members)
{
    std::vector<NodeIndex> exits;
    auto visit = [&](auto &&self, NodeIndex node) -> void {
        const model::Node &n = tree.node(node);
        panicIf(n.isLeaf(), "leaf inside an internal tile");
        if (members.count(n.left) > 0)
            self(self, n.left);
        else
            exits.push_back(n.left);
        if (members.count(n.right) > 0)
            self(self, n.right);
        else
            exits.push_back(n.right);
    };
    visit(visit, tile_root);
    return exits;
}

/**
 * Shared recursive construction (the recursion of Algorithms 1 and 2):
 * build the tile for the subtree rooted at @p subtree_root, then
 * recurse into every exit target.
 */
TileId
buildTiles(const DecisionTree &tree, const TileSelector &selector,
           NodeIndex subtree_root, TileId parent, std::vector<Tile> &tiles)
{
    TileId id = static_cast<TileId>(tiles.size());
    tiles.emplace_back();
    tiles[static_cast<size_t>(id)].parent = parent;

    const model::Node &root_node = tree.node(subtree_root);
    if (root_node.isLeaf()) {
        Tile &t = tiles[static_cast<size_t>(id)];
        t.kind = Tile::Kind::kLeaf;
        t.nodes = {subtree_root};
        t.leafValue = root_node.threshold;
        return id;
    }

    std::set<NodeIndex> members = selector(subtree_root);
    panicIf(members.count(subtree_root) == 0,
            "tile selector dropped the subtree root");

    std::vector<NodeIndex> ordered =
        levelOrderTileNodes(tree, subtree_root, members);
    std::vector<NodeIndex> exits =
        exitTargetsInOrder(tree, subtree_root, members);

    {
        Tile &t = tiles[static_cast<size_t>(id)];
        t.kind = Tile::Kind::kInternal;
        t.nodes = std::move(ordered);
    }

    std::vector<TileId> children;
    children.reserve(exits.size());
    for (NodeIndex exit_target : exits)
        children.push_back(buildTiles(tree, selector, exit_target, id,
                                      tiles));
    tiles[static_cast<size_t>(id)].children = std::move(children);
    return id;
}

TiledTree
tileWithSelector(const DecisionTree &tree, int32_t tile_size,
                 const TileSelector &selector)
{
    fatalIf(tile_size < 1, "tile size must be at least 1");
    std::vector<Tile> tiles;
    buildTiles(tree, selector, tree.root(), kNoTile, tiles);
    return TiledTree(tree, tile_size, std::move(tiles));
}

} // namespace

std::vector<double>
nodeProbabilities(const DecisionTree &tree)
{
    std::vector<double> probability(
        static_cast<size_t>(tree.numNodes()), 0.0);
    std::vector<NodeIndex> leaves = tree.leafIndices();
    std::vector<double> leaf_probability = tree.leafProbabilities();
    for (size_t i = 0; i < leaves.size(); ++i)
        probability[static_cast<size_t>(leaves[i])] = leaf_probability[i];

    // Post-order accumulation into internal nodes.
    auto accumulate = [&](auto &&self, NodeIndex node) -> double {
        const model::Node &n = tree.node(node);
        if (n.isLeaf())
            return probability[static_cast<size_t>(node)];
        double total = self(self, n.left) + self(self, n.right);
        probability[static_cast<size_t>(node)] = total;
        return total;
    };
    accumulate(accumulate, tree.root());
    return probability;
}

TiledTree
basicTiling(const DecisionTree &tree, int32_t tile_size)
{
    // Algorithm 2: pick the next tile_size non-leaf nodes in level
    // order from the subtree root.
    TileSelector selector = [&tree, tile_size](NodeIndex subtree_root) {
        std::set<NodeIndex> members;
        std::queue<NodeIndex> queue;
        queue.push(subtree_root);
        while (!queue.empty() &&
               static_cast<int32_t>(members.size()) < tile_size) {
            NodeIndex node = queue.front();
            queue.pop();
            const model::Node &n = tree.node(node);
            if (n.isLeaf())
                continue;
            members.insert(node);
            queue.push(n.left);
            queue.push(n.right);
        }
        return members;
    };
    return tileWithSelector(tree, tile_size, selector);
}

TiledTree
probabilityBasedTiling(const DecisionTree &tree, int32_t tile_size)
{
    std::vector<double> probability = nodeProbabilities(tree);

    // Algorithm 1: greedily absorb the most probable non-leaf
    // out-edge destination until the tile is full.
    TileSelector selector = [&tree, tile_size,
                             &probability](NodeIndex subtree_root) {
        std::set<NodeIndex> members{subtree_root};
        while (static_cast<int32_t>(members.size()) < tile_size) {
            NodeIndex best = model::kInvalidNode;
            double best_probability = -1.0;
            for (NodeIndex member : members) {
                const model::Node &n = tree.node(member);
                for (NodeIndex child : {n.left, n.right}) {
                    if (members.count(child) > 0 ||
                        tree.node(child).isLeaf()) {
                        continue;
                    }
                    if (probability[static_cast<size_t>(child)] >
                        best_probability) {
                        best_probability =
                            probability[static_cast<size_t>(child)];
                        best = child;
                    }
                }
            }
            if (best == model::kInvalidNode)
                break;
            members.insert(best);
        }
        return members;
    };
    return tileWithSelector(tree, tile_size, selector);
}

TiledTree
minMaxDepthTiling(const DecisionTree &tree, int32_t tile_size)
{
    // Subtree heights, computed once.
    std::vector<int32_t> height(static_cast<size_t>(tree.numNodes()),
                                0);
    auto measure = [&](auto &&self, NodeIndex node) -> int32_t {
        const model::Node &n = tree.node(node);
        if (n.isLeaf())
            return height[static_cast<size_t>(node)] = 0;
        int32_t h = 1 + std::max(self(self, n.left),
                                 self(self, n.right));
        return height[static_cast<size_t>(node)] = h;
    };
    measure(measure, tree.root());

    // Grow each tile along the tallest remaining subtrees so the
    // deepest paths are compressed the most.
    TileSelector selector = [&tree, tile_size,
                             &height](NodeIndex subtree_root) {
        std::set<NodeIndex> members{subtree_root};
        while (static_cast<int32_t>(members.size()) < tile_size) {
            NodeIndex best = model::kInvalidNode;
            int32_t best_height = -1;
            for (NodeIndex member : members) {
                const model::Node &n = tree.node(member);
                for (NodeIndex child : {n.left, n.right}) {
                    if (members.count(child) > 0 ||
                        tree.node(child).isLeaf()) {
                        continue;
                    }
                    if (height[static_cast<size_t>(child)] >
                        best_height) {
                        best_height =
                            height[static_cast<size_t>(child)];
                        best = child;
                    }
                }
            }
            if (best == model::kInvalidNode)
                break;
            members.insert(best);
        }
        return members;
    };
    return tileWithSelector(tree, tile_size, selector);
}

TiledTree
tileTree(const DecisionTree &tree, const TilingOptions &options)
{
    switch (options.algorithm) {
      case TilingAlgorithm::kBasic:
        return basicTiling(tree, options.tileSize);
      case TilingAlgorithm::kProbabilityBased:
        return probabilityBasedTiling(tree, options.tileSize);
      case TilingAlgorithm::kHybrid:
        if (model::isLeafBiased(tree, options.alpha, options.beta))
            return probabilityBasedTiling(tree, options.tileSize);
        return basicTiling(tree, options.tileSize);
      case TilingAlgorithm::kMinMaxDepth:
        return minMaxDepthTiling(tree, options.tileSize);
    }
    panic("unknown tiling algorithm");
}

} // namespace treebeard::hir
