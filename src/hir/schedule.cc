#include "hir/schedule.h"

#include <sstream>

#include "analysis/diagnostics.h"
#include "common/json.h"
#include "common/logging.h"

namespace treebeard::hir {

const char *
loopOrderName(LoopOrder order)
{
    switch (order) {
      case LoopOrder::kOneTreeAtATime: return "one-tree-at-a-time";
      case LoopOrder::kOneRowAtATime: return "one-row-at-a-time";
    }
    panic("unknown loop order");
}

const char *
memoryLayoutName(MemoryLayout layout)
{
    switch (layout) {
      case MemoryLayout::kArray: return "array";
      case MemoryLayout::kSparse: return "sparse";
      case MemoryLayout::kPacked: return "packed";
    }
    panic("unknown memory layout");
}

const char *
packedPrecisionName(PackedPrecision precision)
{
    switch (precision) {
      case PackedPrecision::kF32: return "f32";
      case PackedPrecision::kI16: return "i16";
    }
    panic("unknown packed precision");
}

const char *
traversalKindName(TraversalKind traversal)
{
    switch (traversal) {
      case TraversalKind::kNodeParallel: return "node-parallel";
      case TraversalKind::kRowParallel: return "row-parallel";
    }
    panic("unknown traversal kind");
}

void
Schedule::verifyInto(analysis::DiagnosticEngine &diag) const
{
    using analysis::IrLevel;
    if (tileSize < 1 || tileSize > kMaxScheduleTileSize) {
        diag.error(IrLevel::kSchedule, "schedule.tile-size.range",
                   "tile size " + std::to_string(tileSize) +
                       " out of range [1, " +
                       std::to_string(kMaxScheduleTileSize) + "]");
    }
    if (interleaveFactor != 1 && interleaveFactor != 2 &&
        interleaveFactor != 4 && interleaveFactor != 8) {
        diag.error(IrLevel::kSchedule, "schedule.interleave.factor",
                   "interleave factor must be 1, 2, 4 or 8; got " +
                       std::to_string(interleaveFactor));
    }
    if (numThreads < 1) {
        diag.error(IrLevel::kSchedule, "schedule.threads.range",
                   "numThreads must be at least 1");
    }
    if (rowChunkRows < 0 || rowChunkRows > kMaxRowChunkRows) {
        diag.error(IrLevel::kSchedule, "hir.schedule.row-chunk.range",
                   "rowChunkRows must be in [0, " +
                       std::to_string(kMaxRowChunkRows) +
                       "] (0 = one chunk per worker); got " +
                       std::to_string(rowChunkRows));
    }
    // The negated comparisons also reject NaN.
    if (!(alpha > 0.0 && alpha <= 1.0)) {
        diag.error(IrLevel::kSchedule, "schedule.alpha.range",
                   "alpha must be in (0, 1]");
    }
    if (!(beta > 0.0 && beta <= 1.0)) {
        diag.error(IrLevel::kSchedule, "schedule.beta.range",
                   "beta must be in (0, 1]");
    }
    if (padDepthSlack < 0) {
        diag.error(IrLevel::kSchedule, "schedule.pad-slack.range",
                   "padDepthSlack must be non-negative");
    }
    if (!(hotPathCoverage >= 0.0 && hotPathCoverage <= 1.0)) {
        diag.error(IrLevel::kSchedule, "hir.schedule.hot-path.range",
                   "hotPathCoverage must be in [0, 1] (0 = off)");
    }
}

void
Schedule::validate() const
{
    analysis::DiagnosticEngine diag;
    diag.setPass("schedule-validate");
    verifyInto(diag);
    diag.throwIfErrors();
}

namespace {

const char *
tilingKey(TilingAlgorithm algorithm)
{
    return tilingAlgorithmName(algorithm);
}

TilingAlgorithm
tilingFromKey(const std::string &key)
{
    for (TilingAlgorithm algorithm :
         {TilingAlgorithm::kBasic, TilingAlgorithm::kProbabilityBased,
          TilingAlgorithm::kHybrid, TilingAlgorithm::kMinMaxDepth}) {
        if (key == tilingAlgorithmName(algorithm))
            return algorithm;
    }
    fatal("unknown tiling algorithm '", key, "'");
}

} // namespace

std::string
scheduleToJsonString(const Schedule &schedule)
{
    JsonValue::Object object;
    object["loop_order"] = JsonValue(loopOrderName(schedule.loopOrder));
    object["tile_size"] =
        JsonValue(static_cast<int64_t>(schedule.tileSize));
    object["tiling"] = JsonValue(tilingKey(schedule.tiling));
    object["alpha"] = JsonValue(schedule.alpha);
    object["beta"] = JsonValue(schedule.beta);
    object["pad_and_unroll"] = JsonValue(schedule.padAndUnrollWalks);
    object["peel"] = JsonValue(schedule.peelWalks);
    object["pad_depth_slack"] =
        JsonValue(static_cast<int64_t>(schedule.padDepthSlack));
    object["interleave"] =
        JsonValue(static_cast<int64_t>(schedule.interleaveFactor));
    object["layout"] = JsonValue(memoryLayoutName(schedule.layout));
    object["packed_precision"] =
        JsonValue(packedPrecisionName(schedule.packedPrecision));
    object["traversal"] =
        JsonValue(traversalKindName(schedule.traversal));
    object["pipeline_packed"] =
        JsonValue(schedule.pipelinePackedWalks);
    object["threads"] =
        JsonValue(static_cast<int64_t>(schedule.numThreads));
    object["row_chunk_rows"] =
        JsonValue(static_cast<int64_t>(schedule.rowChunkRows));
    object["assume_no_missing"] =
        JsonValue(schedule.assumeNoMissingValues);
    object["hot_path_coverage"] = JsonValue(schedule.hotPathCoverage);
    return JsonValue(std::move(object)).dump();
}

Schedule
scheduleFromJsonString(const std::string &text)
{
    JsonValue document = JsonValue::parse(text);
    Schedule schedule;
    schedule.loopOrder =
        document.at("loop_order").asString() == "one-row-at-a-time"
            ? LoopOrder::kOneRowAtATime
            : LoopOrder::kOneTreeAtATime;
    schedule.tileSize =
        static_cast<int32_t>(document.at("tile_size").asInt());
    schedule.tiling = tilingFromKey(document.at("tiling").asString());
    schedule.alpha = document.at("alpha").asNumber();
    schedule.beta = document.at("beta").asNumber();
    schedule.padAndUnrollWalks =
        document.at("pad_and_unroll").asBoolean();
    schedule.peelWalks = document.at("peel").asBoolean();
    schedule.padDepthSlack =
        static_cast<int32_t>(document.at("pad_depth_slack").asInt());
    schedule.interleaveFactor =
        static_cast<int32_t>(document.at("interleave").asInt());
    {
        const std::string &layout = document.at("layout").asString();
        if (layout == "array")
            schedule.layout = MemoryLayout::kArray;
        else if (layout == "packed")
            schedule.layout = MemoryLayout::kPacked;
        else
            schedule.layout = MemoryLayout::kSparse;
    }
    schedule.numThreads =
        static_cast<int32_t>(document.at("threads").asInt());
    JsonValue default_false(false);
    schedule.assumeNoMissingValues =
        document.getOr("assume_no_missing", default_false).asBoolean();
    // Knobs younger than the serialization format read with defaults
    // so older schedule files stay loadable.
    JsonValue default_f32("f32");
    schedule.packedPrecision =
        document.getOr("packed_precision", default_f32).asString() ==
                "i16"
            ? PackedPrecision::kI16
            : PackedPrecision::kF32;
    JsonValue default_true(true);
    schedule.pipelinePackedWalks =
        document.getOr("pipeline_packed", default_true).asBoolean();
    JsonValue default_zero(static_cast<int64_t>(0));
    schedule.rowChunkRows = static_cast<int32_t>(
        document.getOr("row_chunk_rows", default_zero).asInt());
    JsonValue default_node("node-parallel");
    schedule.traversal =
        document.getOr("traversal", default_node).asString() ==
                "row-parallel"
            ? TraversalKind::kRowParallel
            : TraversalKind::kNodeParallel;
    JsonValue default_off(0.0);
    schedule.hotPathCoverage =
        document.getOr("hot_path_coverage", default_off).asNumber();
    schedule.validate();
    return schedule;
}

std::string
Schedule::toString() const
{
    std::ostringstream os;
    os << loopOrderName(loopOrder) << " tile=" << tileSize << " tiling="
       << tilingAlgorithmName(tiling) << " layout="
       << memoryLayoutName(layout) << " interleave=" << interleaveFactor
       << (packedPrecision == PackedPrecision::kI16 ? " +i16" : "")
       << (traversal == TraversalKind::kRowParallel ? " +row-parallel"
                                                    : "")
       << (pipelinePackedWalks ? "" : " -pipeline")
       << (padAndUnrollWalks ? " +unroll" : "")
       << (peelWalks ? " +peel" : "")
       << (assumeNoMissingValues ? " +no-nan" : "")
       << " threads=" << numThreads;
    if (rowChunkRows > 0)
        os << " chunk=" << rowChunkRows;
    if (hotPathCoverage > 0.0)
        os << " hot=" << hotPathCoverage;
    return os.str();
}

} // namespace treebeard::hir
