/**
 * @file
 * Hot-path selection: the high-level IR side of selective branchless
 * emission. Using the same reach probabilities that drive
 * probability-based tiling (Section III-C), select the minimal
 * connected root subtree of a tiled tree whose leaves absorb a
 * schedule-controlled fraction of training hits, and flatten it into a
 * layout-independent straight-line program. Both backends lower the
 * program — the source JIT to nested immediate-operand ternaries, the
 * kernel runtime to an interpreted prelude — and fall through to the
 * tiled walkers at the region's exit edges, so predictions stay
 * bit-identical to the plain walk.
 */
#ifndef TREEBEARD_HIR_HOT_PATH_H
#define TREEBEARD_HIR_HOT_PATH_H

#include <cstdint>
#include <vector>

#include "hir/tiled_tree.h"

namespace treebeard::hir {

/**
 * Upper bound on base-tree nodes one tree's hot path may hold. Keeps
 * the emitted straight-line block register-resident (and the nested
 * conditional expression within any compiler's bracket limits); the
 * greedy selection stops growing the region when the next tile would
 * cross it, so very deep trees get a truncated-but-valid region even
 * at coverage 1.
 */
constexpr int32_t kHotPathNodeBudget = 512;

/**
 * One tree's flattened hot region.
 *
 * Nodes are stored in preorder: node 0 is the base tree's root and
 * every child reference points strictly forward, so the program is a
 * connected root subtree by construction (the hir.hotpath.* verifier
 * re-checks this on the lowered form). A child reference r >= 0 names
 * the next node; r < 0 names outcome -(r + 1). Outcomes either carry a
 * resolved leaf value or the tile the cold tiled walk resumes from.
 */
struct HotPathProgram
{
    struct Node
    {
        /** Base-tree node evaluated here (internal node). */
        model::NodeIndex node = model::kInvalidNode;
        /** Child references (see above). */
        int32_t left = 0;
        int32_t right = 0;
    };

    struct Outcome
    {
        /** True when the region resolved all the way to a leaf. */
        bool isLeaf = false;
        /** Prediction value when isLeaf. */
        float leafValue = 0.0f;
        /** Tile the cold walk enters when !isLeaf. */
        TileId exitTile = kNoTile;
        /** Reach probability mass of this outcome (sums to 1). */
        double probability = 0.0;
    };

    std::vector<Node> nodes;
    std::vector<Outcome> outcomes;
    /** Probability mass resolved in-region (leaf outcomes). */
    double hotCoverage = 0.0;
    /** True when the tree had no hit statistics (depth-based pick). */
    bool depthFallback = false;

    bool empty() const { return nodes.empty() && outcomes.empty(); }
};

/**
 * Reach probability of every tile: a real tile carries its root base
 * node's probability (leaf tiles the leaf's), a dummy internal tile
 * inherits its deterministic continuation's, and dummy-leaf fillers —
 * unreachable by construction — carry 0. The root tile carries 1.
 */
std::vector<double> tileReachProbabilities(const TiledTree &tiled);

/**
 * Select and flatten the hot region of @p tiled covering at least
 * @p coverage probability mass (subject to @p node_budget). Returns an
 * empty program when coverage is 0 or the tree has no usable region.
 * Trees without recorded hit statistics fall back to shallowest-first
 * selection under uniform leaf probabilities (depthFallback is set so
 * callers can diagnose it).
 */
HotPathProgram buildHotPathProgram(const TiledTree &tiled,
                                   double coverage,
                                   int32_t node_budget =
                                       kHotPathNodeBudget);

} // namespace treebeard::hir

#endif // TREEBEARD_HIR_HOT_PATH_H
