#include "hir/tiled_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/logging.h"

namespace treebeard::hir {

namespace {

/** Slot of @p node inside @p nodes, or -1. */
int32_t
slotOf(const std::vector<model::NodeIndex> &nodes, model::NodeIndex node)
{
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] == node)
            return static_cast<int32_t>(i);
    }
    return -1;
}

/**
 * Exit ordinal of edge (slot, side) for in-tile links, counting exits
 * in left-to-right depth-first order. side 0 = left, 1 = right.
 */
int32_t
exitOrdinal(const std::vector<int32_t> &left,
            const std::vector<int32_t> &right, int32_t target_slot,
            int32_t target_side)
{
    int32_t counter = 0;
    int32_t found = -1;
    auto visit = [&](auto &&self, int32_t slot) -> void {
        if (left[static_cast<size_t>(slot)] < 0) {
            if (slot == target_slot && target_side == 0)
                found = counter;
            ++counter;
        } else {
            self(self, left[static_cast<size_t>(slot)]);
        }
        if (right[static_cast<size_t>(slot)] < 0) {
            if (slot == target_slot && target_side == 1)
                found = counter;
            ++counter;
        } else {
            self(self, right[static_cast<size_t>(slot)]);
        }
    };
    visit(visit, 0);
    panicIf(found < 0, "exit edge not found in tile");
    return found;
}

} // namespace

TiledTree::TiledTree(const model::DecisionTree &tree, int32_t tile_size,
                     std::vector<Tile> tiles)
    : tree_(&tree), tileSize_(tile_size), tiles_(std::move(tiles))
{
    fatalIf(tile_size < 1, "tile size must be at least 1");
    fatalIf(tiles_.empty(), "tiled tree needs at least one tile");
}

const Tile &
TiledTree::tile(TileId id) const
{
    panicIf(id < 0 || id >= numTiles(), "tile id out of range");
    return tiles_[static_cast<size_t>(id)];
}

Tile &
TiledTree::mutableTile(TileId id)
{
    panicIf(id < 0 || id >= numTiles(), "tile id out of range");
    return tiles_[static_cast<size_t>(id)];
}

int32_t
TiledTree::tileDepth(TileId id) const
{
    int32_t depth = 0;
    TileId current = id;
    while (tile(current).parent != kNoTile) {
        current = tile(current).parent;
        ++depth;
    }
    return depth;
}

int32_t
TiledTree::maxLeafDepth() const
{
    // Dummy filler leaves are unreachable (dummy tiles route every
    // walk to child 0), so depth statistics consider real leaves only.
    int32_t result = 0;
    for (TileId id = 0; id < numTiles(); ++id) {
        if (tile(id).kind == Tile::Kind::kLeaf)
            result = std::max(result, tileDepth(id));
    }
    return result;
}

int32_t
TiledTree::minLeafDepth() const
{
    int32_t result = -1;
    for (TileId id = 0; id < numTiles(); ++id) {
        if (tile(id).kind != Tile::Kind::kLeaf)
            continue;
        int32_t depth = tileDepth(id);
        if (result < 0 || depth < result)
            result = depth;
    }
    return std::max(result, 0);
}

bool
TiledTree::isPerfectlyBalanced() const
{
    return minLeafDepth() == maxLeafDepth();
}

void
TiledTree::tileSlotLinks(TileId id, std::vector<int32_t> &left,
                         std::vector<int32_t> &right) const
{
    const Tile &t = tile(id);
    if (t.kind == Tile::Kind::kDummyInternal) {
        // Dummy tiles use a left-leaning chain: with always-true dummy
        // predicates every walk exits at child 0.
        left.assign(static_cast<size_t>(tileSize_), -1);
        right.assign(static_cast<size_t>(tileSize_), -1);
        for (int32_t i = 0; i + 1 < tileSize_; ++i)
            left[static_cast<size_t>(i)] = i + 1;
        return;
    }
    panicIf(t.kind != Tile::Kind::kInternal,
            "slot links requested for a leaf tile");
    size_t count = t.nodes.size();
    left.assign(count, -1);
    right.assign(count, -1);
    for (size_t i = 0; i < count; ++i) {
        const model::Node &node = tree_->node(t.nodes[i]);
        left[i] = slotOf(t.nodes, node.left);
        right[i] = slotOf(t.nodes, node.right);
    }
}

int32_t
TiledTree::walkTile(TileId id, const float *row) const
{
    const Tile &t = tile(id);
    if (t.kind == Tile::Kind::kDummyInternal)
        return 0;
    std::vector<int32_t> left, right;
    tileSlotLinks(id, left, right);
    int32_t slot = 0;
    while (true) {
        const model::Node &node =
            tree_->node(t.nodes[static_cast<size_t>(slot)]);
        float value = row[node.featureIndex];
        bool go_left = std::isnan(value) ? node.defaultLeft
                                         : value < node.threshold;
        int32_t next = go_left ? left[static_cast<size_t>(slot)]
                               : right[static_cast<size_t>(slot)];
        if (next < 0)
            return exitOrdinal(left, right, slot, go_left ? 0 : 1);
        slot = next;
    }
}

float
TiledTree::predict(const float *row) const
{
    int64_t ignored;
    return predictCountingTiles(row, &ignored);
}

float
TiledTree::predictCountingTiles(const float *row,
                                int64_t *tiles_visited) const
{
    TileId current = rootTile();
    int64_t visited = 0;
    while (!tile(current).isLeafKind()) {
        ++visited;
        int32_t child = walkTile(current, row);
        panicIf(child < 0 ||
                    child >= static_cast<int32_t>(
                                 tile(current).children.size()),
                "tile walk produced out-of-range child");
        current = tile(current).children[static_cast<size_t>(child)];
    }
    *tiles_visited = visited;
    return tile(current).leafValue;
}

double
TiledTree::expectedDepth() const
{
    // Map base leaf nodes to probabilities.
    std::vector<model::NodeIndex> leaves = tree_->leafIndices();
    std::vector<double> probabilities = tree_->leafProbabilities();
    std::map<model::NodeIndex, double> probability_of;
    for (size_t i = 0; i < leaves.size(); ++i)
        probability_of[leaves[i]] = probabilities[i];

    double expected = 0.0;
    for (TileId id = 0; id < numTiles(); ++id) {
        const Tile &t = tile(id);
        if (t.kind != Tile::Kind::kLeaf)
            continue;
        double p = probability_of.at(t.nodes.front());
        expected += p * tileDepth(id);
    }
    return expected;
}

void
TiledTree::padToDepth(int32_t target_depth)
{
    fatalIf(target_depth < maxLeafDepth(),
            "cannot pad to depth ", target_depth,
            " below current depth ", maxLeafDepth());
    // Collect ids first: we append tiles while iterating.
    std::vector<TileId> leaf_tiles;
    for (TileId id = 0; id < numTiles(); ++id) {
        // Only real leaves need lifting; dummy fillers are unreachable.
        if (tile(id).kind == Tile::Kind::kLeaf)
            leaf_tiles.push_back(id);
    }

    for (TileId leaf_id : leaf_tiles) {
        int32_t depth = tileDepth(leaf_id);
        TileId parent = tile(leaf_id).parent;
        if (depth >= target_depth)
            continue;
        panicIf(parent == kNoTile && target_depth > 0 && depth == 0 &&
                    numTiles() > 1,
                "leaf tile with no parent in a multi-tile tree");

        // Build a chain of dummy internal tiles above the leaf. Every
        // dummy routes walks to child 0; the remaining child slots are
        // filled with dummy leaves replicating the real leaf's value.
        float value = tile(leaf_id).leafValue;
        TileId below = leaf_id;
        for (int32_t level = 0; level < target_depth - depth; ++level) {
            Tile dummy;
            dummy.kind = Tile::Kind::kDummyInternal;
            dummy.parent = kNoTile; // fixed up below
            TileId dummy_id = static_cast<TileId>(tiles_.size());
            tiles_.push_back(dummy);

            std::vector<TileId> children;
            children.push_back(below);
            tiles_[static_cast<size_t>(below)].parent = dummy_id;
            for (int32_t extra = 0; extra < tileSize_; ++extra) {
                Tile filler;
                filler.kind = Tile::Kind::kDummyLeaf;
                filler.leafValue = value;
                filler.parent = dummy_id;
                TileId filler_id = static_cast<TileId>(tiles_.size());
                tiles_.push_back(filler);
                children.push_back(filler_id);
            }
            tiles_[static_cast<size_t>(dummy_id)].children =
                std::move(children);
            below = dummy_id;
        }

        // Splice the chain into the parent (or make it the root).
        if (parent == kNoTile) {
            // The original root was the leaf itself: rotate tile ids so
            // the chain head becomes tile 0 by swapping.
            std::swap(tiles_[0], tiles_[static_cast<size_t>(below)]);
            // Fix up all references after the swap.
            for (Tile &t : tiles_) {
                for (TileId &child : t.children) {
                    if (child == 0)
                        child = below;
                    else if (child == below)
                        child = 0;
                }
                if (t.parent == 0)
                    t.parent = below;
                else if (t.parent == below)
                    t.parent = 0;
            }
            tiles_[0].parent = kNoTile;
        } else {
            Tile &parent_tile = tiles_[static_cast<size_t>(parent)];
            bool spliced = false;
            for (TileId &child : parent_tile.children) {
                if (child == leaf_id) {
                    child = below;
                    spliced = true;
                    break;
                }
            }
            panicIf(!spliced, "leaf tile not found among parent children");
            tiles_[static_cast<size_t>(below)].parent = parent;
        }
    }
}

void
TiledTree::validate() const
{
    const model::DecisionTree &tree = *tree_;
    std::vector<model::NodeIndex> parents = tree.parentArray();

    // Partitioning: every base node appears in exactly one tile.
    std::set<model::NodeIndex> seen;
    for (TileId id = 0; id < numTiles(); ++id) {
        const Tile &t = tile(id);
        for (model::NodeIndex node : t.nodes) {
            fatalIf(node < 0 || node >= tree.numNodes(),
                    "tile ", id, " references node ", node,
                    " outside the base tree");
            fatalIf(seen.count(node) > 0,
                    "node ", node, " appears in more than one tile");
            seen.insert(node);
        }
    }
    fatalIf(static_cast<int64_t>(seen.size()) != tree.numNodes(),
            "tiling covers ", seen.size(), " of ", tree.numNodes(),
            " base nodes");

    for (TileId id = 0; id < numTiles(); ++id) {
        const Tile &t = tile(id);
        switch (t.kind) {
          case Tile::Kind::kLeaf:
            fatalIf(t.numNodes() != 1, "leaf tile ", id,
                    " must hold exactly one node");
            fatalIf(!tree.node(t.nodes.front()).isLeaf(),
                    "leaf tile ", id, " holds an internal node");
            fatalIf(!t.children.empty(), "leaf tile ", id,
                    " has children");
            fatalIf(t.leafValue != tree.node(t.nodes.front()).threshold,
                    "leaf tile ", id, " caches a stale value");
            break;
          case Tile::Kind::kDummyLeaf:
            fatalIf(!t.nodes.empty(), "dummy leaf ", id,
                    " holds base nodes");
            fatalIf(!t.children.empty(), "dummy leaf ", id,
                    " has children");
            break;
          case Tile::Kind::kDummyInternal:
            fatalIf(!t.nodes.empty(), "dummy tile ", id,
                    " holds base nodes");
            fatalIf(static_cast<int32_t>(t.children.size()) !=
                        tileSize_ + 1,
                    "dummy tile ", id, " has wrong arity");
            break;
          case Tile::Kind::kInternal: {
            fatalIf(t.numNodes() < 1 || t.numNodes() > tileSize_,
                    "tile ", id, " has ", t.numNodes(),
                    " nodes (tile size ", tileSize_, ")");
            // Leaf separation: no base leaves inside internal tiles.
            for (model::NodeIndex node : t.nodes) {
                fatalIf(tree.node(node).isLeaf(), "internal tile ", id,
                        " contains leaf node ", node);
            }
            // Connectedness: every non-root in-tile node's base parent
            // is in the tile.
            for (size_t i = 1; i < t.nodes.size(); ++i) {
                model::NodeIndex parent =
                    parents[static_cast<size_t>(t.nodes[i])];
                fatalIf(slotOf(t.nodes, parent) < 0,
                        "tile ", id, " is not connected: node ",
                        t.nodes[i], "'s parent is outside the tile");
            }
            // Level-order slot invariant: slot 0 is the tile root (its
            // parent is outside the tile).
            model::NodeIndex root_parent =
                parents[static_cast<size_t>(t.nodes[0])];
            fatalIf(root_parent != model::kInvalidNode &&
                        slotOf(t.nodes, root_parent) >= 0,
                    "tile ", id, " slot 0 is not the tile root");

            // Exit ordering: child k's subtree root is exit k's target.
            std::vector<int32_t> left, right;
            tileSlotLinks(id, left, right);

            // Slot order must be level order (BFS) over in-tile links:
            // the SIMD lanes and the shape LUT both assume it.
            {
                std::vector<int32_t> bfs{0};
                for (size_t head = 0; head < bfs.size(); ++head) {
                    int32_t slot = bfs[head];
                    if (left[static_cast<size_t>(slot)] >= 0)
                        bfs.push_back(left[static_cast<size_t>(slot)]);
                    if (right[static_cast<size_t>(slot)] >= 0)
                        bfs.push_back(right[static_cast<size_t>(slot)]);
                }
                fatalIf(bfs.size() != t.nodes.size(), "tile ", id,
                        " in-tile links are not connected");
                for (size_t i = 0; i < bfs.size(); ++i) {
                    fatalIf(bfs[i] != static_cast<int32_t>(i), "tile ",
                            id, " nodes are not in level order");
                }
            }
            int32_t exits = 0;
            for (size_t i = 0; i < t.nodes.size(); ++i) {
                exits += (left[i] < 0 ? 1 : 0) + (right[i] < 0 ? 1 : 0);
            }
            fatalIf(static_cast<int32_t>(t.children.size()) != exits,
                    "tile ", id, " has ", t.children.size(),
                    " children but ", exits, " exit edges");
            for (size_t i = 0; i < t.nodes.size(); ++i) {
                const model::Node &node = tree.node(t.nodes[i]);
                for (int32_t side = 0; side < 2; ++side) {
                    int32_t link = side == 0 ? left[i] : right[i];
                    if (link >= 0)
                        continue;
                    model::NodeIndex target =
                        side == 0 ? node.left : node.right;
                    int32_t ordinal = exitOrdinal(
                        left, right, static_cast<int32_t>(i), side);
                    TileId child =
                        t.children[static_cast<size_t>(ordinal)];
                    const Tile &child_tile = tile(child);
                    fatalIf(child_tile.parent != id, "tile ", child,
                            " has a wrong parent link");
                    if (!child_tile.isDummy()) {
                        fatalIf(child_tile.nodes.empty() ||
                                    child_tile.nodes.front() != target,
                                "tile ", id, " exit ", ordinal,
                                " does not lead to base node ", target);
                    }
                }
            }

            // Maximal tiling: an under-full tile may only border
            // leaves (or padding above leaves).
            if (t.numNodes() < tileSize_) {
                for (TileId child : t.children) {
                    const Tile &child_tile = tile(child);
                    fatalIf(child_tile.kind == Tile::Kind::kInternal,
                            "tile ", id, " has ", t.numNodes(),
                            " nodes yet borders internal tile ", child,
                            " (maximal-tiling violation)");
                }
            }
            break;
          }
        }
    }

    // Root invariants.
    fatalIf(tile(rootTile()).parent != kNoTile, "root tile has a parent");
}

std::vector<int32_t>
TiledTree::structureSignature() const
{
    std::vector<int32_t> signature;
    std::vector<TileId> queue{rootTile()};
    size_t head = 0;
    while (head < queue.size()) {
        TileId id = queue[head++];
        const Tile &t = tile(id);
        signature.push_back(static_cast<int32_t>(t.kind));
        signature.push_back(t.numNodes());
        signature.push_back(static_cast<int32_t>(t.children.size()));
        for (TileId child : t.children)
            queue.push_back(child);
    }
    return signature;
}

} // namespace treebeard::hir
