/**
 * @file
 * Tiled decision trees: the result of the high-level IR tiling
 * transformation (Section III-B). Tiling groups nodes of a binary tree
 * into tiles of at most n_t nodes, turning it into an (n_t+1)-ary tree
 * of tiles whose predicates can be evaluated speculatively with SIMD.
 */
#ifndef TREEBEARD_HIR_TILED_TREE_H
#define TREEBEARD_HIR_TILED_TREE_H

#include <cstdint>
#include <vector>

#include "model/decision_tree.h"

namespace treebeard::hir {

/** Tile id within a TiledTree. */
using TileId = int32_t;
constexpr TileId kNoTile = -1;

/**
 * One tile.
 *
 * Internal tiles hold 1..n_t internal nodes of the base tree, stored in
 * level order *within the tile* (slot 0 is the tile's root). Children
 * (exit edges) are ordered left-to-right, matching the tile-shape LUT's
 * exit ordering — children[k] is the tile reached when the in-tile walk
 * exits through ordinal k.
 *
 * Leaf tiles hold exactly one base-tree leaf. Dummy tiles are created
 * by padding (Section III-F): a dummy internal tile deterministically
 * routes every walk to children[0]; a dummy leaf replicates the value
 * of the leaf it pads.
 */
struct Tile
{
    enum class Kind {
        kInternal,
        kLeaf,
        kDummyInternal,
        kDummyLeaf,
    };

    Kind kind = Kind::kInternal;

    /** Base-tree nodes, level-order within the tile; empty for dummies. */
    std::vector<model::NodeIndex> nodes;

    /** Child tiles in exit (left-to-right) order; empty for leaves. */
    std::vector<TileId> children;

    TileId parent = kNoTile;

    /** Prediction value for kLeaf / kDummyLeaf tiles. */
    float leafValue = 0.0f;

    bool isLeafKind() const
    {
        return kind == Kind::kLeaf || kind == Kind::kDummyLeaf;
    }

    bool isDummy() const
    {
        return kind == Kind::kDummyInternal || kind == Kind::kDummyLeaf;
    }

    int32_t numNodes() const { return static_cast<int32_t>(nodes.size()); }
};

/**
 * A tiled view of one decision tree.
 *
 * The base tree must outlive the TiledTree. Construction happens in
 * the tiling pass (see tiling.h); this class provides structural
 * queries, the validity check of Section III-B1, reference traversal
 * semantics, and the padding transformation.
 */
class TiledTree
{
  public:
    /**
     * Construct from prebuilt tiles.
     * @param tree the base tree (kept by reference).
     * @param tile_size the maximum nodes per tile (n_t).
     * @param tiles tile storage; tile 0 must be the root tile.
     */
    TiledTree(const model::DecisionTree &tree, int32_t tile_size,
              std::vector<Tile> tiles);

    const model::DecisionTree &baseTree() const { return *tree_; }
    int32_t tileSize() const { return tileSize_; }

    int32_t numTiles() const { return static_cast<int32_t>(tiles_.size()); }
    const Tile &tile(TileId id) const;
    Tile &mutableTile(TileId id);
    TileId rootTile() const { return 0; }

    /** Depth of @p id in the tile tree (root tile depth is 0). */
    int32_t tileDepth(TileId id) const;

    /** Maximum leaf-tile depth. */
    int32_t maxLeafDepth() const;

    /** Minimum leaf-tile depth. */
    int32_t minLeafDepth() const;

    /** True when every leaf tile sits at the same depth. */
    bool isPerfectlyBalanced() const;

    /**
     * In-tile child links of an internal tile, in slot space:
     * left[i]/right[i] is the slot of node i's child inside the tile or
     * lir::kExit style -1 when the edge exits the tile. Dummy internal
     * tiles report a left-leaning chain over tileSize() slots.
     */
    void tileSlotLinks(TileId id, std::vector<int32_t> &left,
                       std::vector<int32_t> &right) const;

    /**
     * Reference traversal: walk the tiled tree for @p row and return
     * the reached leaf value. Must agree exactly with the base tree's
     * predict() (proved by the test suite for all tilings).
     */
    float predict(const float *row) const;

    /** As predict() but also reports the number of tiles visited. */
    float predictCountingTiles(const float *row, int64_t *tiles_visited)
        const;

    /**
     * Expected number of tile evaluations per walk,
     * sum_l p_l * depth(l), the objective probability-based tiling
     * minimizes (Section III-C). Uses base-tree leaf probabilities;
     * dummy leaves contribute their padded real leaf's probability.
     */
    double expectedDepth() const;

    /**
     * Pad the tree with dummy tiles so all leaf tiles sit at depth
     * @p target_depth (>= current maxLeafDepth()). After padding,
     * isPerfectlyBalanced() holds and every root-to-leaf walk performs
     * exactly target_depth tile evaluations.
     */
    void padToDepth(int32_t target_depth);

    /**
     * Validate the tiling constraints of Section III-B1 (partitioning,
     * connectedness, leaf separation, maximal tiling) plus internal
     * structural invariants (exit ordering, parent links). fatal() on
     * the first violation. Dummy tiles are exempt from the
     * partitioning check (they contain no base nodes).
     */
    void validate() const;

    /**
     * A structure signature: two tilings with equal signatures have
     * isomorphic tile trees (same arity everywhere) and can share
     * traversal code after reordering (Section III-F).
     */
    std::vector<int32_t> structureSignature() const;

  private:
    /** Walk one internal tile; returns the exit ordinal taken. */
    int32_t walkTile(TileId id, const float *row) const;

    const model::DecisionTree *tree_;
    int32_t tileSize_;
    std::vector<Tile> tiles_;
};

} // namespace treebeard::hir

#endif // TREEBEARD_HIR_TILED_TREE_H
