#include "analysis/lock_diagnostics.h"

#include "common/checked_mutex.h"

namespace treebeard::analysis {

DiagnosticEngine
lockOrderReport()
{
    DiagnosticEngine engine;
    engine.setPass("lock-order-validator");
    for (const LockViolation &violation : lockViolations()) {
        engine.error(IrLevel::kRuntime, violation.code,
                     violation.message);
    }
    return engine;
}

} // namespace treebeard::analysis
