/**
 * @file
 * Bridges the runtime lock-order validator (common/checked_mutex.h)
 * into the DiagnosticEngine, so concurrency findings render through
 * the same text/JSON reporting as the IR verifiers: stable
 * runtime.lock.* codes, `treebeard verify`-style JSON, and
 * throwIfErrors() for callers that treat a detected lock-order
 * violation as fatal.
 *
 * The validator itself lives below the diagnostics layer (the common
 * library cannot depend on analysis), so it records plain
 * LockViolation structs; this header is the one place that lifts
 * them into Diagnostics at IrLevel::kRuntime.
 */
#ifndef TREEBEARD_ANALYSIS_LOCK_DIAGNOSTICS_H
#define TREEBEARD_ANALYSIS_LOCK_DIAGNOSTICS_H

#include "analysis/diagnostics.h"

namespace treebeard::analysis {

/**
 * Snapshot the validator's recorded violations as a
 * DiagnosticEngine: one error-severity Diagnostic per violation,
 * code = the violation's runtime.lock.* code, level = kRuntime,
 * pass = "lock-order-validator". Empty when no violation occurred
 * (or checking is disabled).
 */
DiagnosticEngine lockOrderReport();

} // namespace treebeard::analysis

#endif // TREEBEARD_ANALYSIS_LOCK_DIAGNOSTICS_H
