#include "analysis/diagnostics.h"

#include <sstream>

namespace treebeard::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::kNote: return "note";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    panic("unknown diagnostic severity");
}

const char *
irLevelName(IrLevel level)
{
    switch (level) {
      case IrLevel::kModel: return "model";
      case IrLevel::kSchedule: return "schedule";
      case IrLevel::kHir: return "hir";
      case IrLevel::kMir: return "mir";
      case IrLevel::kLir: return "lir";
      case IrLevel::kRuntime: return "runtime";
    }
    panic("unknown IR level");
}

std::string
DiagnosticLocation::toString() const
{
    std::ostringstream os;
    bool first = true;
    auto append = [&](const char *name, int64_t value) {
        if (value < 0)
            return;
        os << (first ? "" : " ") << name << " " << value;
        first = false;
    };
    append("tree", tree);
    append("tile", tile);
    append("slot", slot);
    append("group", group);
    if (!op.empty()) {
        os << (first ? "" : " ") << "op " << op;
        first = false;
    }
    return os.str();
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << code << "]";
    if (!pass.empty())
        os << " (after " << pass << ")";
    std::string where = location.toString();
    if (!where.empty())
        os << " " << where << ":";
    os << " " << message;
    return os.str();
}

JsonValue
Diagnostic::toJson() const
{
    JsonValue::Object object;
    object["code"] = JsonValue(code);
    object["severity"] = JsonValue(severityName(severity));
    object["level"] = JsonValue(irLevelName(level));
    if (!pass.empty())
        object["pass"] = JsonValue(pass);
    object["message"] = JsonValue(message);
    if (!location.empty()) {
        JsonValue::Object loc;
        if (location.tree >= 0)
            loc["tree"] = JsonValue(location.tree);
        if (location.tile >= 0)
            loc["tile"] = JsonValue(location.tile);
        if (location.slot >= 0)
            loc["slot"] = JsonValue(static_cast<int64_t>(location.slot));
        if (location.group >= 0)
            loc["group"] = JsonValue(location.group);
        if (!location.op.empty())
            loc["op"] = JsonValue(location.op);
        object["location"] = JsonValue(std::move(loc));
    }
    return JsonValue(std::move(object));
}

Diagnostic &
Diagnostic::atTree(int64_t tree)
{
    location.tree = tree;
    return *this;
}

Diagnostic &
Diagnostic::atTile(int64_t tile)
{
    location.tile = tile;
    return *this;
}

Diagnostic &
Diagnostic::atSlot(int32_t slot)
{
    location.slot = slot;
    return *this;
}

Diagnostic &
Diagnostic::atGroup(int64_t group)
{
    location.group = group;
    return *this;
}

Diagnostic &
Diagnostic::atOp(std::string op)
{
    location.op = std::move(op);
    return *this;
}

Diagnostic &
DiagnosticEngine::report(Severity severity, IrLevel level,
                         std::string code, std::string message)
{
    Diagnostic diagnostic;
    diagnostic.code = std::move(code);
    diagnostic.severity = severity;
    diagnostic.level = level;
    diagnostic.pass = pass_;
    diagnostic.message = std::move(message);
    add(std::move(diagnostic));
    return diags_.back();
}

void
DiagnosticEngine::add(Diagnostic diagnostic)
{
    if (diagnostic.severity == Severity::kError)
        ++errors_;
    else if (diagnostic.severity == Severity::kWarning)
        ++warnings_;
    diags_.push_back(std::move(diagnostic));
}

bool
DiagnosticEngine::hasCode(const std::string &code) const
{
    for (const Diagnostic &diagnostic : diags_) {
        if (diagnostic.code == code)
            return true;
    }
    return false;
}

void
DiagnosticEngine::clear()
{
    diags_.clear();
    errors_ = 0;
    warnings_ = 0;
}

std::string
DiagnosticEngine::toString() const
{
    std::string out;
    for (const Diagnostic &diagnostic : diags_) {
        out += diagnostic.toString();
        out += "\n";
    }
    return out;
}

JsonValue
DiagnosticEngine::toJson() const
{
    JsonValue::Array entries;
    for (const Diagnostic &diagnostic : diags_)
        entries.push_back(diagnostic.toJson());
    JsonValue::Object object;
    object["errors"] = JsonValue(errors_);
    object["warnings"] = JsonValue(warnings_);
    object["diagnostics"] = JsonValue(std::move(entries));
    return JsonValue(std::move(object));
}

void
DiagnosticEngine::throwIfErrors() const
{
    if (hasErrors())
        throw VerificationError(pass_, diags_);
}

std::string
VerificationError::formatMessage(
    const std::string &pass, const std::vector<Diagnostic> &diagnostics)
{
    std::ostringstream os;
    int64_t errors = 0;
    for (const Diagnostic &diagnostic : diagnostics)
        errors += diagnostic.severity == Severity::kError ? 1 : 0;
    os << "verification failed";
    if (!pass.empty())
        os << " after pass '" << pass << "'";
    os << " with " << errors
       << (errors == 1 ? " error:" : " errors:");
    for (const Diagnostic &diagnostic : diagnostics)
        os << "\n  " << diagnostic.toString();
    return os.str();
}

namespace {

/** The first error-severity code (for Error::code() branching). */
std::string
firstErrorCode(const std::vector<Diagnostic> &diagnostics)
{
    for (const Diagnostic &diagnostic : diagnostics) {
        if (diagnostic.severity == Severity::kError)
            return diagnostic.code;
    }
    return diagnostics.empty() ? std::string() : diagnostics.front().code;
}

} // namespace

VerificationError::VerificationError(std::string pass,
                                     std::vector<Diagnostic> diagnostics)
    : Error(firstErrorCode(diagnostics),
            formatMessage(pass, diagnostics)),
      pass_(std::move(pass)), diags_(std::move(diagnostics))
{}

bool
VerificationError::hasCode(const std::string &code) const
{
    for (const Diagnostic &diagnostic : diags_) {
        if (diagnostic.code == code)
            return true;
    }
    return false;
}

} // namespace treebeard::analysis
