/**
 * @file
 * Per-level IR verifiers. Each verifier inspects one abstraction level
 * of the compilation pipeline and reports violations into a
 * DiagnosticEngine (never throwing itself, so one run collects every
 * problem):
 *
 *  - verifyForest: model structure and value ranges (delegates to
 *    model::verifyForest).
 *  - verifySchedule: schedule knob legality.
 *  - verifyHir: tiling covers every base node exactly once, tiles are
 *    connected/maximal/level-ordered with consistent exit edges, the
 *    tree reorder is a permutation, and groups cover all positions
 *    with pad/peel depths matching their members.
 *  - verifyMir: loop-nest well-formedness, interleave attributes,
 *    walk-group indices in range.
 *  - verifyLir: the static buffer-safety analysis — proves, for all
 *    three layouts, that every reachable tile's child indices /
 *    childBase / leaf offsets stay in bounds, walks terminate
 *    (childBase strictly increases), packed records never straddle
 *    cache lines, shape-LUT lookups are total, sentinel (+inf /
 *    leaf-marker / default-left) invariants hold, and feature indices
 *    fit int16 where the packed layout requires it.
 *
 * These run after each pass when CompilerOptions::verifyEach is set
 * (see treebeard/compiler.h) and behind `treebeard_cli verify`.
 */
#ifndef TREEBEARD_ANALYSIS_VERIFIER_H
#define TREEBEARD_ANALYSIS_VERIFIER_H

#include <cstdint>

#include "analysis/diagnostics.h"
#include "hir/hir_module.h"
#include "hir/schedule.h"
#include "lir/forest_buffers.h"
#include "mir/mir.h"
#include "model/forest.h"

namespace treebeard::analysis {

/** Model-level checks ("model.*" codes). */
void verifyForest(const model::Forest &forest, DiagnosticEngine &diag);

/** Schedule knob legality ("schedule.*" codes). */
void verifySchedule(const hir::Schedule &schedule,
                    DiagnosticEngine &diag);

/**
 * HIR legality ("hir.*" codes): per-tree tiling invariants
 * (Section III-B1) plus module-level reorder/grouping invariants
 * (Section III-F). Requires the tiling pass to have run; an untiled
 * module reports hir.tiling.not-run.
 */
void verifyHir(const hir::HirModule &module, DiagnosticEngine &diag);

/**
 * MIR well-formedness ("mir.*" codes). @p num_groups is the HIR
 * group count for walk-group range checking; pass -1 to skip the
 * upper-bound check when the group count is unknown.
 */
void verifyMir(const mir::MirFunction &function, int64_t num_groups,
               DiagnosticEngine &diag);

/** The LIR buffer-safety analysis ("lir.*" codes). */
void verifyLir(const lir::ForestBuffers &buffers,
               DiagnosticEngine &diag);

} // namespace treebeard::analysis

#endif // TREEBEARD_ANALYSIS_VERIFIER_H
