#include "analysis/verifier.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "model/verifier.h"

namespace treebeard::analysis {

namespace {

using hir::Tile;
using hir::TiledTree;
using hir::TileId;
using lir::ForestBuffers;
using lir::TileShape;
using lir::TileShapeTable;

std::string
str(int64_t value)
{
    return std::to_string(value);
}

// ---------------------------------------------------------------------
// HIR
// ---------------------------------------------------------------------

int32_t
slotOf(const std::vector<model::NodeIndex> &nodes,
       model::NodeIndex node)
{
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] == node)
            return static_cast<int32_t>(i);
    }
    return -1;
}

/**
 * Exit ordinal of the edge leaving @p target_slot on @p target_side
 * (0 = left) in a tile with in-tile links @p left / @p right: exit
 * edges are numbered left-to-right by depth-first traversal, matching
 * the tile-shape LUT convention.
 */
int32_t
exitOrdinalOf(const std::vector<int32_t> &left,
              const std::vector<int32_t> &right, int32_t slot,
              int32_t target_slot, int32_t target_side,
              int32_t &ordinal)
{
    for (int32_t side = 0; side < 2; ++side) {
        int32_t link = side == 0 ? left[static_cast<size_t>(slot)]
                                 : right[static_cast<size_t>(slot)];
        if (link < 0) {
            if (slot == target_slot && side == target_side)
                return ordinal;
            ++ordinal;
        } else {
            int32_t found = exitOrdinalOf(left, right, link,
                                          target_slot, target_side,
                                          ordinal);
            if (found >= 0)
                return found;
        }
    }
    return -1;
}

void
verifyInternalTile(const TiledTree &tiled, TileId id, int64_t tree_id,
                   DiagnosticEngine &diag)
{
    const model::DecisionTree &tree = tiled.baseTree();
    const Tile &t = tiled.tile(id);
    std::vector<model::NodeIndex> parents = tree.parentArray();

    if (t.numNodes() < 1 || t.numNodes() > tiled.tileSize()) {
        diag.error(IrLevel::kHir, "hir.tiling.arity",
                   "tile has " + str(t.numNodes()) +
                       " nodes (tile size " +
                       str(tiled.tileSize()) + ")")
            .atTree(tree_id)
            .atTile(id);
        return;
    }
    bool leaves_inside = false;
    for (model::NodeIndex node : t.nodes) {
        if (tree.node(node).isLeaf()) {
            diag.error(IrLevel::kHir, "hir.tiling.leaf-separation",
                       "internal tile contains leaf node " + str(node))
                .atTree(tree_id)
                .atTile(id);
            leaves_inside = true;
        }
    }
    if (leaves_inside)
        return;

    // Connectedness: every non-slot-0 node's base parent is in the
    // tile, and slot 0's parent is outside (slot 0 is the tile root).
    bool connected = true;
    for (size_t i = 1; i < t.nodes.size(); ++i) {
        model::NodeIndex parent =
            parents[static_cast<size_t>(t.nodes[i])];
        if (parent == model::kInvalidNode ||
            slotOf(t.nodes, parent) < 0) {
            diag.error(IrLevel::kHir, "hir.tiling.connectedness",
                       "tile is not connected: node " +
                           str(t.nodes[i]) +
                           "'s parent is outside the tile")
                .atTree(tree_id)
                .atTile(id)
                .atSlot(static_cast<int32_t>(i));
            connected = false;
        }
    }
    model::NodeIndex root_parent =
        parents[static_cast<size_t>(t.nodes[0])];
    if (root_parent != model::kInvalidNode &&
        slotOf(t.nodes, root_parent) >= 0) {
        diag.error(IrLevel::kHir, "hir.tiling.connectedness",
                   "slot 0 is not the tile root")
            .atTree(tree_id)
            .atTile(id);
        connected = false;
    }
    if (!connected)
        return;

    std::vector<int32_t> left;
    std::vector<int32_t> right;
    tiled.tileSlotLinks(id, left, right);

    // Slot order must be level order (BFS) over the in-tile links: the
    // SIMD lanes and the shape LUT both assume it.
    std::vector<int32_t> bfs{0};
    for (size_t head = 0; head < bfs.size(); ++head) {
        int32_t slot = bfs[head];
        if (left[static_cast<size_t>(slot)] >= 0)
            bfs.push_back(left[static_cast<size_t>(slot)]);
        if (right[static_cast<size_t>(slot)] >= 0)
            bfs.push_back(right[static_cast<size_t>(slot)]);
    }
    if (bfs.size() != t.nodes.size()) {
        diag.error(IrLevel::kHir, "hir.tiling.connectedness",
                   "in-tile links are not connected")
            .atTree(tree_id)
            .atTile(id);
        return;
    }
    for (size_t i = 0; i < bfs.size(); ++i) {
        if (bfs[i] != static_cast<int32_t>(i)) {
            diag.error(IrLevel::kHir, "hir.tiling.level-order",
                       "tile nodes are not in level order")
                .atTree(tree_id)
                .atTile(id)
                .atSlot(static_cast<int32_t>(i));
            return;
        }
    }

    int32_t exits = 0;
    for (size_t i = 0; i < t.nodes.size(); ++i) {
        exits += (left[i] < 0 ? 1 : 0) + (right[i] < 0 ? 1 : 0);
    }
    if (static_cast<int32_t>(t.children.size()) != exits) {
        diag.error(IrLevel::kHir, "hir.tiling.arity",
                   "tile has " + str(t.children.size()) +
                       " children but " + str(exits) + " exit edges")
            .atTree(tree_id)
            .atTile(id);
        return;
    }

    // Exit ordering and child parent links: exit k's base-tree target
    // must be the root node of children[k].
    for (size_t i = 0; i < t.nodes.size(); ++i) {
        const model::Node &node = tree.node(t.nodes[i]);
        for (int32_t side = 0; side < 2; ++side) {
            int32_t link = side == 0 ? left[i] : right[i];
            if (link >= 0)
                continue;
            model::NodeIndex target =
                side == 0 ? node.left : node.right;
            int32_t ordinal = 0;
            int32_t exit = exitOrdinalOf(left, right, 0,
                                         static_cast<int32_t>(i),
                                         side, ordinal);
            TileId child = t.children[static_cast<size_t>(exit)];
            if (child < 0 || child >= tiled.numTiles()) {
                diag.error(IrLevel::kHir, "hir.tiling.parent-link",
                           "exit " + str(exit) +
                               " points at tile " + str(child) +
                               " outside the tree")
                    .atTree(tree_id)
                    .atTile(id);
                continue;
            }
            const Tile &child_tile = tiled.tile(child);
            if (child_tile.parent != id) {
                diag.error(IrLevel::kHir, "hir.tiling.parent-link",
                           "tile " + str(child) +
                               " has a wrong parent link")
                    .atTree(tree_id)
                    .atTile(child);
            }
            if (!child_tile.isDummy() &&
                (child_tile.nodes.empty() ||
                 child_tile.nodes.front() != target)) {
                diag.error(IrLevel::kHir, "hir.tiling.exit-order",
                           "exit " + str(exit) +
                               " does not lead to base node " +
                               str(target))
                    .atTree(tree_id)
                    .atTile(id);
            }
        }
    }

    // Maximal tiling: an under-full tile may only border leaves (or
    // padding above leaves).
    if (t.numNodes() < tiled.tileSize()) {
        for (TileId child : t.children) {
            if (child < 0 || child >= tiled.numTiles())
                continue;
            if (tiled.tile(child).kind == Tile::Kind::kInternal) {
                diag.error(IrLevel::kHir, "hir.tiling.maximal",
                           "tile has " + str(t.numNodes()) +
                               " nodes yet borders internal tile " +
                               str(child))
                    .atTree(tree_id)
                    .atTile(id);
            }
        }
    }
}

/**
 * Verify one tiled tree. Returns true when every tile's parent link
 * is in range and acyclic — only then may callers use the tree's
 * depth queries (tileDepth walks parent chains and would not
 * terminate on a cycle).
 */
bool
verifyTiledTree(const TiledTree &tiled, int64_t tree_id,
                DiagnosticEngine &diag)
{
    const model::DecisionTree &tree = tiled.baseTree();

    // Parent links must stay in range and form a forest (no cycles);
    // everything downstream that walks parent chains depends on it.
    bool parents_ok = true;
    for (TileId id = 0; id < tiled.numTiles() && parents_ok; ++id) {
        int32_t steps = 0;
        TileId current = id;
        while (current != hir::kNoTile) {
            TileId parent = tiled.tile(current).parent;
            if (parent != hir::kNoTile &&
                (parent < 0 || parent >= tiled.numTiles())) {
                diag.error(IrLevel::kHir, "hir.tiling.parent-link",
                           "parent link " + str(parent) +
                               " is outside the tile range")
                    .atTree(tree_id)
                    .atTile(current);
                parents_ok = false;
                break;
            }
            if (++steps > tiled.numTiles()) {
                diag.error(IrLevel::kHir, "hir.tiling.parent-link",
                           "parent links form a cycle")
                    .atTree(tree_id)
                    .atTile(id);
                parents_ok = false;
                break;
            }
            current = parent;
        }
    }
    if (!parents_ok)
        return false;

    // Partitioning: every base node appears in exactly one tile.
    std::vector<TileId> owner(static_cast<size_t>(tree.numNodes()),
                              hir::kNoTile);
    int64_t covered = 0;
    std::vector<char> tile_ok(static_cast<size_t>(tiled.numTiles()),
                              1);
    for (TileId id = 0; id < tiled.numTiles(); ++id) {
        const Tile &t = tiled.tile(id);
        for (model::NodeIndex node : t.nodes) {
            if (node < 0 || node >= tree.numNodes()) {
                diag.error(IrLevel::kHir, "hir.tiling.node-range",
                           "tile references node " + str(node) +
                               " outside the base tree")
                    .atTree(tree_id)
                    .atTile(id);
                tile_ok[static_cast<size_t>(id)] = 0;
                continue;
            }
            if (owner[static_cast<size_t>(node)] != hir::kNoTile) {
                diag.error(IrLevel::kHir, "hir.tiling.partition",
                           "node " + str(node) +
                               " appears in more than one tile")
                    .atTree(tree_id)
                    .atTile(id);
            } else {
                owner[static_cast<size_t>(node)] = id;
                ++covered;
            }
        }
        if (t.isDummy() && !t.nodes.empty()) {
            diag.error(IrLevel::kHir, "hir.tiling.partition",
                       "dummy tile holds base nodes")
                .atTree(tree_id)
                .atTile(id);
            tile_ok[static_cast<size_t>(id)] = 0;
        }
    }
    if (covered != tree.numNodes()) {
        diag.error(IrLevel::kHir, "hir.tiling.partition",
                   "tiling covers " + str(covered) + " of " +
                       str(tree.numNodes()) + " base nodes")
            .atTree(tree_id);
    }

    for (TileId id = 0; id < tiled.numTiles(); ++id) {
        if (!tile_ok[static_cast<size_t>(id)])
            continue;
        const Tile &t = tiled.tile(id);
        switch (t.kind) {
          case Tile::Kind::kLeaf:
            if (t.numNodes() != 1 ||
                !tree.node(t.nodes.front()).isLeaf()) {
                diag.error(IrLevel::kHir,
                           "hir.tiling.leaf-separation",
                           "leaf tile must hold exactly one base leaf")
                    .atTree(tree_id)
                    .atTile(id);
                break;
            }
            if (!t.children.empty()) {
                diag.error(IrLevel::kHir, "hir.tiling.arity",
                           "leaf tile has children")
                    .atTree(tree_id)
                    .atTile(id);
            }
            if (t.leafValue != tree.node(t.nodes.front()).threshold) {
                diag.error(IrLevel::kHir, "hir.tiling.stale-leaf",
                           "leaf tile caches a stale value")
                    .atTree(tree_id)
                    .atTile(id);
            }
            break;
          case Tile::Kind::kDummyLeaf:
            if (!t.children.empty()) {
                diag.error(IrLevel::kHir, "hir.tiling.arity",
                           "dummy leaf has children")
                    .atTree(tree_id)
                    .atTile(id);
            }
            break;
          case Tile::Kind::kDummyInternal:
            if (static_cast<int32_t>(t.children.size()) !=
                tiled.tileSize() + 1) {
                diag.error(IrLevel::kHir, "hir.tiling.arity",
                           "dummy tile has wrong arity")
                    .atTree(tree_id)
                    .atTile(id);
            }
            break;
          case Tile::Kind::kInternal:
            verifyInternalTile(tiled, id, tree_id, diag);
            break;
        }
    }

    if (tiled.numTiles() > 0 &&
        tiled.tile(tiled.rootTile()).parent != hir::kNoTile) {
        diag.error(IrLevel::kHir, "hir.tiling.parent-link",
                   "root tile has a parent")
            .atTree(tree_id)
            .atTile(tiled.rootTile());
    }
    return true;
}

// ---------------------------------------------------------------------
// LIR
// ---------------------------------------------------------------------

/** Outcome of checking one tile record's value fields. */
struct TileRecordCheck
{
    /** Shape id was valid; the fields below are meaningful. */
    bool ok = false;
    /**
     * A dummy/hop/tail tile: left-chain shape with all-+inf
     * thresholds, so every walk (NaN included, via the all-left
     * default bits) exits at child 0 and only child 0 exists.
     */
    bool deterministic = false;
    /** Children the walk can reach (1 for deterministic tiles). */
    int32_t numChildren = 0;
};

TileRecordCheck
checkTileRecord(const ForestBuffers &buffers, int64_t tile,
                int64_t tree_id, DiagnosticEngine &diag)
{
    const TileShapeTable &shapes = *buffers.shapes;
    ForestBuffers::TileFields fields = buffers.tileFields(tile);
    TileRecordCheck result;
    if (fields.shapeId < 0 || fields.shapeId >= shapes.numShapes()) {
        diag.error(IrLevel::kLir, "lir.shape-id.range",
                   "shape id " + str(fields.shapeId) +
                       " out of range [0, " +
                       str(shapes.numShapes()) + ")")
            .atTree(tree_id)
            .atTile(tile);
        return result;
    }
    result.ok = true;
    const TileShape &shape = shapes.shape(fields.shapeId);
    constexpr float inf = std::numeric_limits<float>::infinity();
    bool quantized =
        buffers.layout == lir::LayoutKind::kPackedQuantized;

    // In the quantized layout +inf narrows to the kQuantizedNaN
    // sentinel (no quantized row value ever compares less than it).
    bool all_inf = true;
    for (int32_t slot = 0; slot < buffers.tileSize; ++slot) {
        all_inf =
            all_inf &&
            (quantized ? fields.qthresholds[slot] == lir::kQuantizedNaN
                       : fields.thresholds[slot] == inf);
    }
    result.deterministic =
        all_inf && fields.shapeId == shapes.leftChainShapeId();

    uint32_t lane_mask = (1u << buffers.tileSize) - 1;
    if (result.deterministic) {
        // Sentinel invariant: a deterministic tile must route NaN
        // lanes left too, or a missing value could reach one of its
        // unmaterialized siblings.
        if ((fields.defaultLeft & lane_mask) != lane_mask) {
            diag.error(IrLevel::kLir, "lir.sentinel.default-left",
                       "deterministic (+inf) tile without all-left "
                       "default bits")
                .atTree(tree_id)
                .atTile(tile);
        }
        result.numChildren = 1;
        return result;
    }

    // Populated slots (level-order slots [0, numNodes)) hold real
    // predicates: thresholds finite, features in range. Slots past
    // numNodes are LUT don't-cares.
    for (int32_t slot = 0; slot < shape.numNodes(); ++slot) {
        if (quantized) {
            // A populated predicate must hold a representable int16
            // threshold, never the NaN/+inf sentinel.
            if (fields.qthresholds[slot] == lir::kQuantizedNaN) {
                diag.error(IrLevel::kLir, "lir.packedq.threshold",
                           "quantized NaN/+inf sentinel in a populated "
                           "slot of a non-dummy tile")
                    .atTree(tree_id)
                    .atTile(tile)
                    .atSlot(slot);
            }
        } else if (!std::isfinite(fields.thresholds[slot])) {
            diag.error(IrLevel::kLir, "lir.threshold.invalid",
                       "non-finite threshold in a populated slot of a "
                       "non-dummy tile")
                .atTree(tree_id)
                .atTile(tile)
                .atSlot(slot);
        }
        int32_t feature = fields.feature(slot);
        if (feature < 0 || feature >= buffers.numFeatures) {
            diag.error(IrLevel::kLir, "lir.feature.range",
                       "feature index " + str(feature) +
                           " out of range [0, " +
                           str(buffers.numFeatures) + ")")
                .atTree(tree_id)
                .atTile(tile)
                .atSlot(slot);
        }
    }
    result.numChildren = shape.numChildren();
    return result;
}

void
verifySparseTree(const ForestBuffers &buffers, int64_t tree_id,
                 int64_t first, int64_t end, DiagnosticEngine &diag)
{
    int64_t block = end - first;
    std::vector<int32_t> claims(static_cast<size_t>(block), 0);
    bool topology_intact = true;

    for (int64_t tile = first; tile < end; ++tile) {
        TileRecordCheck check =
            checkTileRecord(buffers, tile, tree_id, diag);
        if (!check.ok) {
            topology_intact = false;
            continue;
        }
        int32_t child_base = buffers.tileFields(tile).childBase;
        if (child_base >= 0) {
            // Termination: child indices strictly increase, so every
            // walk reaches a leaf range in finitely many steps.
            if (child_base <= tile) {
                diag.error(IrLevel::kLir, "lir.child-base.backward",
                           "childBase " + str(child_base) +
                               " does not advance past tile " +
                               str(tile) +
                               " (walk may not terminate)")
                    .atTree(tree_id)
                    .atTile(tile);
                topology_intact = false;
            } else if (child_base + check.numChildren > end) {
                diag.error(IrLevel::kLir, "lir.child-base.oob",
                           "children [" + str(child_base) + ", " +
                               str(child_base + check.numChildren) +
                               ") fall outside tree block [" +
                               str(first) + ", " + str(end) + ")")
                    .atTree(tree_id)
                    .atTile(tile);
                topology_intact = false;
            } else {
                for (int32_t c = 0; c < check.numChildren; ++c)
                    ++claims[static_cast<size_t>(child_base - first +
                                                 c)];
            }
        } else {
            int64_t leaf_base =
                -(static_cast<int64_t>(child_base) + 1);
            if (leaf_base + check.numChildren >
                static_cast<int64_t>(buffers.leaves.size())) {
                diag.error(IrLevel::kLir, "lir.leaf-range.oob",
                           "leaf range [" + str(leaf_base) + ", " +
                               str(leaf_base + check.numChildren) +
                               ") exceeds the leaf pool (" +
                               str(static_cast<int64_t>(
                                   buffers.leaves.size())) +
                               " entries)")
                    .atTree(tree_id)
                    .atTile(tile);
            }
        }
    }

    // With all child links proven in range, the block must form a
    // tree: every non-root tile claimed by exactly one parent.
    if (!topology_intact)
        return;
    if (block > 0 && claims[0] > 0) {
        diag.error(IrLevel::kLir, "lir.topology.shared",
                   "tree root tile has a parent")
            .atTree(tree_id)
            .atTile(first);
    }
    for (int64_t i = 1; i < block; ++i) {
        if (claims[static_cast<size_t>(i)] == 0) {
            diag.error(IrLevel::kLir, "lir.topology.orphan",
                       "tile is unreachable (no parent in the block)")
                .atTree(tree_id)
                .atTile(first + i);
        } else if (claims[static_cast<size_t>(i)] > 1) {
            diag.error(IrLevel::kLir, "lir.topology.shared",
                       "tile has multiple parents")
                .atTree(tree_id)
                .atTile(first + i);
        }
    }
}

void
verifySafetyTail(const ForestBuffers &buffers, int64_t tail_begin,
                 DiagnosticEngine &diag)
{
    constexpr float inf = std::numeric_limits<float>::infinity();
    const TileShapeTable &shapes = *buffers.shapes;
    int64_t num_tiles = buffers.numTiles();
    if (num_tiles - tail_begin < buffers.tileSize + 1) {
        diag.error(IrLevel::kLir, "lir.tail.broken",
                   "safety tail has " + str(num_tiles - tail_begin) +
                       " tiles; expected at least " +
                       str(buffers.tileSize + 1));
        return;
    }
    bool quantized =
        buffers.layout == lir::LayoutKind::kPackedQuantized;
    uint32_t lane_mask = (1u << buffers.tileSize) - 1;
    for (int64_t tile = tail_begin; tile < num_tiles; ++tile) {
        ForestBuffers::TileFields fields = buffers.tileFields(tile);
        bool all_inf = true;
        for (int32_t slot = 0; slot < buffers.tileSize; ++slot) {
            all_inf = all_inf &&
                      (quantized ? fields.qthresholds[slot] ==
                                       lir::kQuantizedNaN
                                 : fields.thresholds[slot] == inf);
        }
        if (!all_inf ||
            fields.shapeId != shapes.leftChainShapeId()) {
            diag.error(IrLevel::kLir, "lir.tail.broken",
                       "safety-tail tile is not a deterministic +inf "
                       "left-chain tile")
                .atTile(tile);
            continue;
        }
        if ((fields.defaultLeft & lane_mask) != lane_mask) {
            diag.error(IrLevel::kLir, "lir.sentinel.default-left",
                       "safety-tail tile without all-left default "
                       "bits")
                .atTile(tile);
        }
        if (fields.childBase >= 0) {
            diag.error(IrLevel::kLir, "lir.tail.broken",
                       "safety-tail tile is not self-terminating "
                       "(childBase points at tiles)")
                .atTile(tile);
            continue;
        }
        int64_t leaf_base =
            -(static_cast<int64_t>(fields.childBase) + 1);
        if (leaf_base + 1 >
            static_cast<int64_t>(buffers.leaves.size())) {
            diag.error(IrLevel::kLir, "lir.tail.broken",
                       "safety-tail tile's leaf offset is out of "
                       "bounds")
                .atTile(tile);
        }
    }
}

void
verifyArrayTree(const ForestBuffers &buffers, int64_t tree_id,
                int64_t first, int64_t end, DiagnosticEngine &diag)
{
    int64_t arity = buffers.tileSize + 1;
    // BFS over tiles a walk can actually reach; the implicit-array
    // child formula visits each local index through at most one
    // parent, so no visited set is needed.
    std::vector<int64_t> queue{0};
    for (size_t head = 0; head < queue.size(); ++head) {
        int64_t local = queue[head];
        int64_t tile = first + local;
        int16_t shape_id =
            buffers.shapeIds[static_cast<size_t>(tile)];
        if (shape_id == lir::kLeafTileMarker) {
            float value =
                buffers
                    .thresholds[static_cast<size_t>(tile) *
                                static_cast<size_t>(buffers.tileSize)];
            if (!std::isfinite(value)) {
                diag.error(IrLevel::kLir, "lir.leaf.non-finite",
                           "leaf tile carries a non-finite value")
                    .atTree(tree_id)
                    .atTile(tile);
            }
            continue;
        }
        if (shape_id == lir::kUnusedTileMarker) {
            diag.error(IrLevel::kLir, "lir.array.reached-unused",
                       "walk can reach a tile marked unused")
                .atTree(tree_id)
                .atTile(tile);
            continue;
        }
        TileRecordCheck check =
            checkTileRecord(buffers, tile, tree_id, diag);
        if (!check.ok)
            continue;
        for (int32_t c = 0; c < check.numChildren; ++c) {
            int64_t child = arity * local + c + 1;
            if (first + child >= end) {
                diag.error(IrLevel::kLir, "lir.array.child.oob",
                           "child " + str(c) +
                               " falls outside tree block [" +
                               str(first) + ", " + str(end) + ")")
                    .atTree(tree_id)
                    .atTile(tile);
            } else {
                queue.push_back(child);
            }
        }
    }
}

/** Shared header checks; false means per-tile analysis cannot run. */
bool
verifyLirHeader(const ForestBuffers &buffers, DiagnosticEngine &diag)
{
    int64_t num_trees = buffers.numTrees;
    bool ok = true;

    if (static_cast<int64_t>(buffers.treeFirstTile.size()) !=
            num_trees ||
        static_cast<int64_t>(buffers.treeTileEnd.size()) !=
            num_trees) {
        diag.error(IrLevel::kLir, "lir.tree-table.shape",
                   "tree tile tables have " +
                       str(static_cast<int64_t>(
                           buffers.treeFirstTile.size())) +
                       "/" +
                       str(static_cast<int64_t>(
                           buffers.treeTileEnd.size())) +
                       " entries for " + str(num_trees) + " trees");
        ok = false;
    }

    if (buffers.numClasses < 1 ||
        static_cast<int64_t>(buffers.treeClass.size()) != num_trees) {
        diag.error(IrLevel::kLir, "lir.tree-class.range",
                   "per-tree class table is missing or numClasses < "
                   "1");
    } else {
        for (int64_t t = 0; t < num_trees; ++t) {
            int32_t cls = buffers.treeClass[static_cast<size_t>(t)];
            if (cls < 0 || cls >= buffers.numClasses) {
                diag.error(IrLevel::kLir, "lir.tree-class.range",
                           "tree class " + str(cls) +
                               " out of range [0, " +
                               str(buffers.numClasses) + ")")
                    .atTree(t);
            }
        }
    }

    if (static_cast<int64_t>(buffers.walkInfo.size()) != num_trees) {
        diag.error(IrLevel::kLir, "lir.walk-info.shape",
                   "walkInfo has " +
                       str(static_cast<int64_t>(
                           buffers.walkInfo.size())) +
                       " entries for " + str(num_trees) + " trees");
    } else {
        for (int64_t t = 0; t < num_trees; ++t) {
            const lir::TreeWalkInfo &info =
                buffers.walkInfo[static_cast<size_t>(t)];
            if (info.peelDepth < 0 || info.unrolledDepth < 0 ||
                (info.unrolled && info.unrolledDepth < 1)) {
                diag.error(IrLevel::kLir, "lir.walk-info.shape",
                           "inconsistent unroll/peel depths")
                    .atTree(t);
            }
        }
    }

    int64_t num_tiles = buffers.numTiles();
    if (buffers.layout == lir::LayoutKind::kPacked) {
        if (buffers.packedStride !=
            lir::packedTileStride(buffers.tileSize)) {
            diag.error(IrLevel::kLir, "lir.packed.stride",
                       "packed stride " + str(buffers.packedStride) +
                           " does not match tile size " +
                           str(buffers.tileSize) + " (expected " +
                           str(lir::packedTileStride(
                               buffers.tileSize)) +
                           ")");
            ok = false;
        } else if (64 % buffers.packedStride != 0) {
            // Unreachable while the stride matches (strides are
            // powers of two <= 64), but states the cache-line
            // invariant the kernels rely on.
            diag.error(IrLevel::kLir, "lir.packed.alignment",
                       "packed records straddle cache lines (stride " +
                           str(buffers.packedStride) + ")");
            ok = false;
        }
        if (ok &&
            num_tiles * buffers.packedStride >
                static_cast<int64_t>(buffers.packed.size()) * 64) {
            diag.error(IrLevel::kLir, "lir.packed.buffer-size",
                       str(num_tiles) + " records of " +
                           str(buffers.packedStride) +
                           " bytes exceed the packed buffer (" +
                           str(static_cast<int64_t>(
                                   buffers.packed.size()) *
                               64) +
                           " bytes)");
            ok = false;
        }
        if (buffers.numFeatures >= lir::kPackedMaxFeatures) {
            diag.error(IrLevel::kLir, "lir.packed.features",
                       "feature indices do not fit int16 (" +
                           str(buffers.numFeatures) + " features >= " +
                           str(lir::kPackedMaxFeatures) + ")");
            ok = false;
        }
    } else if (buffers.layout == lir::LayoutKind::kPackedQuantized) {
        int32_t expected =
            lir::packedqTileStride(buffers.tileSize);
        if (buffers.packedStride != expected) {
            diag.error(IrLevel::kLir, "lir.packedq.stride",
                       "quantized packed stride " +
                           str(buffers.packedStride) +
                           " does not match tile size " +
                           str(buffers.tileSize) + " (expected " +
                           str(expected) + ")");
            ok = false;
        } else if (64 % buffers.packedStride != 0 ||
                   (buffers.tileSize == 8 &&
                    buffers.packedStride != 32)) {
            // Unreachable while the stride matches (packedqTileStride
            // yields powers of two and exactly 32 for tile size 8),
            // but states the two-records-per-cache-line contract the
            // pipelined walkers rely on.
            diag.error(IrLevel::kLir, "lir.packedq.stride",
                       "quantized records are not cache-line packed "
                       "(stride " +
                           str(buffers.packedStride) + ")");
            ok = false;
        }
        if (ok &&
            num_tiles * buffers.packedStride >
                static_cast<int64_t>(buffers.packed.size()) * 64) {
            diag.error(IrLevel::kLir, "lir.packedq.stride",
                       str(num_tiles) + " records of " +
                           str(buffers.packedStride) +
                           " bytes exceed the packed buffer (" +
                           str(static_cast<int64_t>(
                                   buffers.packed.size()) *
                               64) +
                           " bytes)");
            ok = false;
        }
        if (buffers.numFeatures >=
            lir::kPackedQuantizedMaxFeatures) {
            diag.error(IrLevel::kLir, "lir.packedq.features",
                       "feature indices do not fit uint8 (" +
                           str(buffers.numFeatures) + " features >= " +
                           str(lir::kPackedQuantizedMaxFeatures) +
                           ")");
            ok = false;
        }
        const lir::QuantizationInfo &q = buffers.quantization;
        size_t nf = static_cast<size_t>(buffers.numFeatures);
        if (q.scale.size() != nf || q.offset.size() != nf ||
            q.stepBudget.size() != nf) {
            diag.error(IrLevel::kLir, "lir.packedq.scale",
                       "quantization metadata is not sized to the "
                       "feature count (" +
                           str(static_cast<int64_t>(q.scale.size())) +
                           "/" +
                           str(static_cast<int64_t>(q.offset.size())) +
                           "/" +
                           str(static_cast<int64_t>(
                               q.stepBudget.size())) +
                           " entries for " + str(buffers.numFeatures) +
                           " features)");
            ok = false;
        } else {
            for (size_t f = 0; f < nf; ++f) {
                if (!std::isfinite(q.scale[f]) || q.scale[f] <= 0.0f ||
                    !std::isfinite(q.offset[f])) {
                    diag.error(IrLevel::kLir, "lir.packedq.scale",
                               "feature " +
                                   str(static_cast<int64_t>(f)) +
                                   " has a non-finite or non-positive "
                                   "affine map");
                    ok = false;
                    break;
                }
                float step_scale = q.stepBudget[f] * q.scale[f];
                if (!std::isfinite(q.stepBudget[f]) ||
                    q.stepBudget[f] <= 0.0f || step_scale < 0.99f ||
                    step_scale > 1.01f) {
                    diag.error(IrLevel::kLir, "lir.packedq.budget",
                               "feature " +
                                   str(static_cast<int64_t>(f)) +
                                   " declares step budget " +
                                   str(q.stepBudget[f]) +
                                   " inconsistent with scale " +
                                   str(q.scale[f]));
                    break;
                }
            }
        }
        if (!std::isfinite(q.maxThresholdError) ||
            q.maxThresholdError < 0.0f ||
            !std::isfinite(q.predictionErrorBudget) ||
            q.predictionErrorBudget < 0.0f) {
            diag.error(IrLevel::kLir, "lir.packedq.budget",
                       "worst-case error budgets are non-finite or "
                       "negative");
        } else if (ok && q.stepBudget.size() == nf) {
            // Every threshold actually materialized in a record must
            // round within the declared budget: its feature's step
            // fits under maxThresholdError.
            for (int64_t tile = 0; tile < num_tiles; ++tile) {
                ForestBuffers::TileFields fields =
                    buffers.tileFields(tile);
                bool over = false;
                for (int32_t slot = 0; slot < buffers.tileSize;
                     ++slot) {
                    if (fields.qthresholds[slot] ==
                        lir::kQuantizedNaN)
                        continue; // dummy/padding slot
                    int32_t feature = fields.feature(slot);
                    if (feature < 0 ||
                        feature >= buffers.numFeatures)
                        continue; // lir.feature.range reports this
                    if (q.stepBudget[static_cast<size_t>(feature)] >
                        q.maxThresholdError) {
                        diag.error(
                                IrLevel::kLir, "lir.packedq.budget",
                                "record threshold for feature " +
                                    str(feature) +
                                    " rounds coarser than the "
                                    "declared max threshold error")
                            .atTile(tile)
                            .atSlot(slot);
                        over = true;
                        break;
                    }
                }
                if (over)
                    break;
            }
        }
    } else {
        size_t slots = static_cast<size_t>(num_tiles) *
                       static_cast<size_t>(buffers.tileSize);
        bool shape_ok =
            buffers.thresholds.size() == slots &&
            buffers.featureIndices.size() == slots &&
            buffers.defaultLeft.size() ==
                static_cast<size_t>(num_tiles) &&
            (buffers.layout != lir::LayoutKind::kSparse ||
             buffers.childBase.size() ==
                 static_cast<size_t>(num_tiles));
        if (!shape_ok) {
            diag.error(IrLevel::kLir, "lir.buffer.shape",
                       "per-tile buffers disagree about the tile "
                       "count");
            ok = false;
        }
    }
    return ok;
}

/**
 * Hot-path program invariants (hir.hotpath.* — the programs are
 * lowered HIR regions, carried on the LIR buffers):
 *  - root-subtree: each program flattens a connected root subtree in
 *    preorder — child references point strictly forward, every
 *    non-root node is referenced exactly once, every outcome exactly
 *    once (the root is entered implicitly).
 *  - exit-target: every cold exit resumes inside its own tree's tile
 *    block, so the cold walkers enter a valid tile.
 *  - coverage-sum: outcome probabilities partition the tree's reach
 *    mass (sum to 1), and the recorded hot coverage equals the leaf
 *    outcomes' share of it.
 */
void
verifyHotPaths(const ForestBuffers &buffers, DiagnosticEngine &diag)
{
    if (buffers.hotPaths.empty())
        return;
    if (buffers.hotPaths.size() !=
        static_cast<size_t>(buffers.numTrees)) {
        diag.error(IrLevel::kHir, "hir.hotpath.root-subtree",
                   "hot-path table has " +
                       str(static_cast<int64_t>(
                           buffers.hotPaths.size())) +
                       " entries for " + str(buffers.numTrees) +
                       " trees");
        return;
    }
    for (int64_t pos = 0; pos < buffers.numTrees; ++pos) {
        const lir::TreeHotPath &hot =
            buffers.hotPaths[static_cast<size_t>(pos)];
        if (hot.empty())
            continue;
        int32_t num_nodes = static_cast<int32_t>(hot.nodes.size());
        int32_t num_outcomes =
            static_cast<int32_t>(hot.outcomes.size());
        if (num_outcomes == 0) {
            diag.error(IrLevel::kHir, "hir.hotpath.root-subtree",
                       "hot path has nodes but no outcomes")
                .atTree(pos);
            continue;
        }
        std::vector<int32_t> node_refs(
            static_cast<size_t>(num_nodes), 0);
        std::vector<int32_t> outcome_refs(
            static_cast<size_t>(num_outcomes), 0);
        if (num_nodes == 0)
            outcome_refs[0] = 1; // the root reference
        bool shape_ok = num_nodes != 0 || num_outcomes == 1;
        for (int32_t i = 0; i < num_nodes && shape_ok; ++i) {
            const lir::HotPathNode &node =
                hot.nodes[static_cast<size_t>(i)];
            for (int32_t ref : {node.left, node.right}) {
                if (ref >= 0) {
                    if (ref <= i || ref >= num_nodes) {
                        shape_ok = false;
                        break;
                    }
                    ++node_refs[static_cast<size_t>(ref)];
                } else {
                    int32_t o = -(ref + 1);
                    if (o >= num_outcomes) {
                        shape_ok = false;
                        break;
                    }
                    ++outcome_refs[static_cast<size_t>(o)];
                }
            }
        }
        if (shape_ok) {
            for (int32_t i = 0; i < num_nodes; ++i) {
                if (node_refs[static_cast<size_t>(i)] !=
                    (i == 0 ? 0 : 1))
                    shape_ok = false;
            }
            for (int32_t o = 0; o < num_outcomes; ++o) {
                if (outcome_refs[static_cast<size_t>(o)] != 1)
                    shape_ok = false;
            }
        }
        if (!shape_ok) {
            diag.error(IrLevel::kHir, "hir.hotpath.root-subtree",
                       "hot-path program is not the preorder "
                       "flattening of a connected root subtree "
                       "(child references must point strictly "
                       "forward and reach every node and outcome "
                       "exactly once)")
                .atTree(pos);
        }
        int64_t first =
            buffers.treeFirstTile[static_cast<size_t>(pos)];
        int64_t end = buffers.treeTileEnd[static_cast<size_t>(pos)];
        double total = 0.0;
        double leaf_mass = 0.0;
        for (int32_t o = 0; o < num_outcomes; ++o) {
            const lir::HotPathOutcome &outcome =
                hot.outcomes[static_cast<size_t>(o)];
            total += outcome.probability;
            if (outcome.coldEntryTile < 0) {
                leaf_mass += outcome.probability;
                continue;
            }
            if (outcome.coldEntryTile < first ||
                outcome.coldEntryTile >= end) {
                diag.error(IrLevel::kHir, "hir.hotpath.exit-target",
                           "cold exit tile " +
                               str(outcome.coldEntryTile) +
                               " lies outside the tree's tile block "
                               "[" +
                               str(first) + ", " + str(end) + ")")
                    .atTree(pos)
                    .atSlot(o);
            }
        }
        if (std::abs(total - 1.0) > 1e-6 ||
            std::abs(leaf_mass - hot.hotCoverage) > 1e-6) {
            diag.error(IrLevel::kHir, "hir.hotpath.coverage-sum",
                       "outcome probabilities sum to " +
                           std::to_string(total) + " with leaf mass " +
                           std::to_string(leaf_mass) +
                           " against recorded hot coverage " +
                           std::to_string(hot.hotCoverage))
                .atTree(pos);
        }
    }
}

} // namespace

void
verifyForest(const model::Forest &forest, DiagnosticEngine &diag)
{
    model::verifyForest(forest, diag);
}

void
verifySchedule(const hir::Schedule &schedule, DiagnosticEngine &diag)
{
    schedule.verifyInto(diag);
}

void
verifyHir(const hir::HirModule &module, DiagnosticEngine &diag)
{
    int64_t num_trees = module.forest().numTrees();
    if (!module.isTiled() ||
        static_cast<int64_t>(module.tiledTrees().size()) !=
            num_trees) {
        diag.error(IrLevel::kHir, "hir.tiling.not-run",
                   "tiling pass has not run (or tiled " +
                       str(static_cast<int64_t>(
                           module.tiledTrees().size())) +
                       " of " + str(num_trees) + " trees)");
        return;
    }

    std::vector<char> depth_safe(static_cast<size_t>(num_trees), 1);
    for (int64_t tree = 0; tree < num_trees; ++tree) {
        if (!verifyTiledTree(module.tiledTree(tree), tree, diag))
            depth_safe[static_cast<size_t>(tree)] = 0;
    }

    // Tree order must be a permutation of [0, numTrees).
    const std::vector<int64_t> &order = module.treeOrder();
    bool order_ok =
        static_cast<int64_t>(order.size()) == num_trees;
    if (order_ok) {
        std::vector<char> seen(static_cast<size_t>(num_trees), 0);
        for (int64_t position = 0; position < num_trees; ++position) {
            int64_t tree = order[static_cast<size_t>(position)];
            if (tree < 0 || tree >= num_trees ||
                seen[static_cast<size_t>(tree)]) {
                order_ok = false;
                break;
            }
            seen[static_cast<size_t>(tree)] = 1;
        }
    }
    if (!order_ok) {
        diag.error(IrLevel::kHir, "hir.reorder.permutation",
                   "tree execution order is not a permutation of [0, " +
                       str(num_trees) + ")");
    }

    // Groups (when formed) must cover all positions contiguously and
    // promise only walk shapes their members actually have.
    const std::vector<hir::TreeGroup> &groups = module.groups();
    if (groups.empty())
        return;
    int64_t expected_begin = 0;
    bool coverage_ok = true;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
        const hir::TreeGroup &group = groups[gi];
        if (group.beginPos != expected_begin ||
            group.endPos <= group.beginPos ||
            group.endPos > num_trees) {
            diag.error(IrLevel::kHir, "hir.group.coverage",
                       "group positions [" + str(group.beginPos) +
                           ", " + str(group.endPos) +
                           ") do not tile the tree order")
                .atGroup(static_cast<int64_t>(gi));
            coverage_ok = false;
            break;
        }
        expected_begin = group.endPos;
    }
    if (coverage_ok && expected_begin != num_trees) {
        diag.error(IrLevel::kHir, "hir.group.coverage",
                   "groups cover " + str(expected_begin) + " of " +
                       str(num_trees) + " positions");
        coverage_ok = false;
    }
    if (!coverage_ok || !order_ok)
        return;

    for (size_t gi = 0; gi < groups.size(); ++gi) {
        const hir::TreeGroup &group = groups[gi];
        for (int64_t position = group.beginPos;
             position < group.endPos; ++position) {
            int64_t tree = order[static_cast<size_t>(position)];
            // Depth queries walk parent chains; skip members whose
            // parent links did not verify.
            if (!depth_safe[static_cast<size_t>(tree)])
                continue;
            const TiledTree &tiled = module.tiledTree(tree);
            if (group.unrolledWalk) {
                if (!tiled.isPerfectlyBalanced() ||
                    tiled.maxLeafDepth() != group.walkDepth) {
                    diag.error(IrLevel::kHir, "hir.group.pad-depth",
                               "unrolled group promises walk depth " +
                                   str(group.walkDepth) +
                                   " but member depths are [" +
                                   str(tiled.minLeafDepth()) + ", " +
                                   str(tiled.maxLeafDepth()) + "]")
                        .atGroup(static_cast<int64_t>(gi))
                        .atTree(
                            order[static_cast<size_t>(position)]);
                }
            } else if (group.peelDepth < 0 ||
                       group.peelDepth > tiled.minLeafDepth()) {
                diag.error(IrLevel::kHir, "hir.group.peel-depth",
                           "peel depth " + str(group.peelDepth) +
                               " exceeds member min leaf depth " +
                               str(tiled.minLeafDepth()))
                    .atGroup(static_cast<int64_t>(gi))
                    .atTree(order[static_cast<size_t>(position)]);
            }
        }
    }
}

void
verifyMir(const mir::MirFunction &function, int64_t num_groups,
          DiagnosticEngine &diag)
{
    function.verifyInto(diag);
    if (num_groups < 0)
        return;
    for (const mir::MirOp *walk : function.walkOps()) {
        if (walk->groupIndex >= num_groups) {
            diag.error(IrLevel::kMir, "mir.walk.group-range",
                       "walk group " + str(walk->groupIndex) +
                           " out of range [0, " + str(num_groups) +
                           ")")
                .atOp(mir::opKindName(mir::OpKind::kWalkGroup))
                .atGroup(walk->groupIndex);
        }
    }
}

void
verifyLir(const lir::ForestBuffers &buffers, DiagnosticEngine &diag)
{
    if (buffers.tileSize < 1 ||
        buffers.tileSize > lir::kMaxTileSize) {
        diag.error(IrLevel::kLir, "lir.tile-size.range",
                   "tile size " + str(buffers.tileSize) +
                       " out of range [1, " + str(lir::kMaxTileSize) +
                       "]");
        return;
    }
    if (buffers.shapes == nullptr) {
        diag.error(IrLevel::kLir, "lir.shape-table.missing",
                   "forest buffers carry no tile-shape table");
        return;
    }
    const TileShapeTable &shapes = *buffers.shapes;
    if (shapes.tileSize() != buffers.tileSize) {
        diag.error(IrLevel::kLir, "lir.shape-table.mismatch",
                   "shape table is for tile size " +
                       str(shapes.tileSize()) + ", buffers use " +
                       str(buffers.tileSize));
        return;
    }

    // Shape-LUT totality: every (shape, outcome) entry selects an
    // existing child, so no vector comparison outcome can index past
    // a tile's children.
    if (shapes.lutStride() != (1 << buffers.tileSize)) {
        diag.error(IrLevel::kLir, "lir.lut.stride",
                   "LUT stride " + str(shapes.lutStride()) +
                       " is not 2^" + str(buffers.tileSize));
    } else {
        for (int32_t shape_id = 0; shape_id < shapes.numShapes();
             ++shape_id) {
            int32_t num_children =
                shapes.shape(shape_id).numChildren();
            for (int32_t outcome = 0; outcome < shapes.lutStride();
                 ++outcome) {
                int32_t child = shapes.child(
                    shape_id, static_cast<uint32_t>(outcome));
                if (child < 0 || child >= num_children) {
                    diag.error(IrLevel::kLir, "lir.lut.range",
                               "LUT entry (" + str(shape_id) + ", " +
                                   str(outcome) + ") selects child " +
                                   str(child) + " of " +
                                   str(num_children))
                        .atSlot(outcome);
                    break; // one diagnostic per shape row
                }
            }
        }
    }

    if (!verifyLirHeader(buffers, diag))
        return;

    // Tree blocks must be disjoint, in order, and inside the buffers.
    int64_t num_tiles = buffers.numTiles();
    int64_t previous_end = 0;
    for (int64_t t = 0; t < buffers.numTrees; ++t) {
        int64_t first = buffers.treeFirstTile[static_cast<size_t>(t)];
        int64_t end = buffers.treeTileEnd[static_cast<size_t>(t)];
        if (first < previous_end || end < first || end > num_tiles) {
            diag.error(IrLevel::kLir, "lir.tree-table.shape",
                       "tree block [" + str(first) + ", " + str(end) +
                           ") is not ordered within [0, " +
                           str(num_tiles) + ")")
                .atTree(t);
            return;
        }
        previous_end = end;
    }

    if (buffers.layout != lir::LayoutKind::kArray) {
        for (size_t i = 0; i < buffers.leaves.size(); ++i) {
            if (!std::isfinite(buffers.leaves[i])) {
                diag.error(IrLevel::kLir, "lir.leaf.non-finite",
                           "leaf pool entry " +
                               str(static_cast<int64_t>(i)) +
                               " is non-finite");
            }
        }
    }

    for (int64_t t = 0; t < buffers.numTrees; ++t) {
        int64_t first = buffers.treeFirstTile[static_cast<size_t>(t)];
        int64_t end = buffers.treeTileEnd[static_cast<size_t>(t)];
        if (buffers.layout == lir::LayoutKind::kArray)
            verifyArrayTree(buffers, t, first, end, diag);
        else
            verifySparseTree(buffers, t, first, end, diag);
    }

    if (buffers.layout != lir::LayoutKind::kArray &&
        buffers.numTrees > 0) {
        verifySafetyTail(buffers, previous_end, diag);
    }

    verifyHotPaths(buffers, diag);
}

} // namespace treebeard::analysis
