/**
 * @file
 * Structured, recoverable compiler diagnostics.
 *
 * Plays the role MLIR's diagnostic infrastructure plays in the
 * original system: verifiers report *what* broke, *where* (IR level,
 * pass, tree/tile/op location) and *how bad* it is, instead of dying
 * on the first fatalIf. A DiagnosticEngine collects any number of
 * Diagnostics; callers decide whether to throw (throwIfErrors raises a
 * VerificationError, a treebeard::Error subclass carrying the full
 * report) or to render the report as text or JSON.
 *
 * Diagnostic codes are stable, machine-readable strings of the form
 * "<level>.<subject>.<violation>" (e.g. "lir.child-base.oob"); the
 * mutation-corpus tests assert on them, so treat them as API.
 */
#ifndef TREEBEARD_ANALYSIS_DIAGNOSTICS_H
#define TREEBEARD_ANALYSIS_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/logging.h"

namespace treebeard::analysis {

/** How bad a diagnostic is. Only kError fails verification. */
enum class Severity {
    kNote,
    kWarning,
    kError,
};

const char *severityName(Severity severity);

/**
 * The abstraction level a diagnostic refers to. kRuntime covers
 * findings about the running system rather than any IR — today the
 * lock-order validator's runtime.lock.* family.
 */
enum class IrLevel {
    kModel,
    kSchedule,
    kHir,
    kMir,
    kLir,
    kRuntime,
};

const char *irLevelName(IrLevel level);

/**
 * Where in the IR a diagnostic points. All fields are optional
 * (negative / empty when not applicable); tree/tile indices follow the
 * owning level's conventions (model tree id at kModel/kHir, buffer
 * execution position at kLir).
 */
struct DiagnosticLocation
{
    int64_t tree = -1;
    int64_t tile = -1;
    int32_t slot = -1;
    int64_t group = -1;
    /** MIR op spelling (e.g. "walk_group") when at kMir. */
    std::string op;

    bool empty() const
    {
        return tree < 0 && tile < 0 && slot < 0 && group < 0 &&
               op.empty();
    }

    std::string toString() const;
};

/** One verifier finding. */
struct Diagnostic
{
    /** Stable machine-readable code, e.g. "lir.child-base.oob". */
    std::string code;
    Severity severity = Severity::kError;
    IrLevel level = IrLevel::kLir;
    /** The pass after which the verifier ran (provenance). */
    std::string pass;
    DiagnosticLocation location;
    /** Human-readable description of the violation. */
    std::string message;

    /** "error[lir.child-base.oob] (after lower-to-lir) tile 7: ..." */
    std::string toString() const;

    JsonValue toJson() const;

    // Fluent location setters, so verifiers can report in one
    // expression: diag.error(...).atTile(t).atSlot(s).
    Diagnostic &atTree(int64_t tree);
    Diagnostic &atTile(int64_t tile);
    Diagnostic &atSlot(int32_t slot);
    Diagnostic &atGroup(int64_t group);
    Diagnostic &atOp(std::string op);
};

/**
 * Collects diagnostics from one or more verifier runs. Not
 * thread-safe; verification runs at compile time on the compiling
 * thread only.
 */
class DiagnosticEngine
{
  public:
    /** Pass provenance attached to subsequently reported diagnostics. */
    void setPass(std::string pass) { pass_ = std::move(pass); }
    const std::string &pass() const { return pass_; }

    /**
     * Report a diagnostic; returns a reference for fluent location
     * attachment. The reference is invalidated by the next report.
     */
    Diagnostic &report(Severity severity, IrLevel level,
                       std::string code, std::string message);

    Diagnostic &error(IrLevel level, std::string code,
                      std::string message)
    {
        return report(Severity::kError, level, std::move(code),
                      std::move(message));
    }

    Diagnostic &warning(IrLevel level, std::string code,
                        std::string message)
    {
        return report(Severity::kWarning, level, std::move(code),
                      std::move(message));
    }

    /** Append an already-built diagnostic (merging engines). */
    void add(Diagnostic diagnostic);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    int64_t errorCount() const { return errors_; }
    int64_t warningCount() const { return warnings_; }
    bool hasErrors() const { return errors_ > 0; }
    bool empty() const { return diags_.empty(); }

    /** True when @p code was reported (any severity). */
    bool hasCode(const std::string &code) const;

    void clear();

    /** Multi-line text report (one toString() line per diagnostic). */
    std::string toString() const;

    /**
     * JSON-serializable report:
     * {"errors": N, "warnings": N, "diagnostics": [...]}.
     */
    JsonValue toJson() const;

    /**
     * Raise a VerificationError carrying every collected diagnostic
     * when at least one error was reported; otherwise a no-op.
     */
    void throwIfErrors() const;

  private:
    std::string pass_;
    std::vector<Diagnostic> diags_;
    int64_t errors_ = 0;
    int64_t warnings_ = 0;
};

/**
 * A failed verification: a recoverable treebeard::Error whose what()
 * is the full text report and which carries the structured
 * diagnostics plus the provenance of the pass that failed. The base
 * Error::code() holds the first error-severity diagnostic's code, so
 * callers that only care about the leading failure can branch without
 * walking diagnostics().
 */
class VerificationError : public Error
{
  public:
    VerificationError(std::string pass,
                      std::vector<Diagnostic> diagnostics);

    /** The pass after which verification failed. */
    const std::string &pass() const { return pass_; }

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    /** True when @p code is among the carried diagnostics. */
    bool hasCode(const std::string &code) const;

  private:
    static std::string formatMessage(
        const std::string &pass,
        const std::vector<Diagnostic> &diagnostics);

    std::string pass_;
    std::vector<Diagnostic> diags_;
};

} // namespace treebeard::analysis

#endif // TREEBEARD_ANALYSIS_DIAGNOSTICS_H
