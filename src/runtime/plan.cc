#include "runtime/plan.h"

#include <atomic>
#include <cmath>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"
#include "runtime/walkers.h"

namespace treebeard::runtime {

namespace {

std::atomic<int64_t> gBatchQuantizePasses{0};
std::atomic<int64_t> gBatchQuantizeRows{0};
std::atomic<int64_t> gDatasetQuantizePasses{0};
std::atomic<int64_t> gDatasetQuantizeRows{0};

} // namespace

RowQuantizationStats
rowQuantizationStats()
{
    RowQuantizationStats stats;
    stats.batchPasses = gBatchQuantizePasses.load(std::memory_order_relaxed);
    stats.batchRows = gBatchQuantizeRows.load(std::memory_order_relaxed);
    stats.datasetBinds =
        gDatasetQuantizePasses.load(std::memory_order_relaxed);
    stats.datasetRows = gDatasetQuantizeRows.load(std::memory_order_relaxed);
    return stats;
}

void
noteDatasetQuantization(int64_t num_rows)
{
    gDatasetQuantizePasses.fetch_add(1, std::memory_order_relaxed);
    gDatasetQuantizeRows.fetch_add(num_rows, std::memory_order_relaxed);
}

void
quantizeRowsInto(const lir::ForestBuffers &fb, const float *rows,
                 int64_t num_rows, int32_t *out)
{
    int32_t nf = fb.numFeatures;
    const lir::QuantizationInfo &q = fb.quantization;
    for (int64_t r = 0; r < num_rows; ++r) {
        const float *row = rows + r * nf;
        int32_t *qrow = out + r * nf;
        for (int32_t f = 0; f < nf; ++f)
            qrow[f] = q.quantizeValue(row[f], f);
    }
}

namespace {

using hir::TreeGroup;
using lir::ForestBuffers;
using lir::LayoutKind;

/**
 * Generic dynamic-tile-size walk (any layout) entered at an arbitrary
 * tile of tree @p pos — the root for full walks, or a hot-path cold
 * exit tile mid-tree. Used for tile sizes without a specialized
 * kernel, by the instrumented path and by the hot-path runner.
 */
float
walkDynamicFrom(const ForestBuffers &fb, int64_t pos, int64_t tile,
                const float *row)
{
    if (fb.layout != LayoutKind::kArray) {
        // Sparse and packed share the child-base chaining scheme.
        (void)pos;
        while (true) {
            int32_t child = evalTileDynamic(fb, tile, row);
            int32_t base = fb.tileFields(tile).childBase;
            if (base < 0)
                return fb.leaves[static_cast<size_t>(-(base + 1) +
                                                     child)];
            tile = base + child;
        }
    }
    int64_t base = fb.treeFirstTile[static_cast<size_t>(pos)];
    int64_t arity = fb.tileSize + 1;
    int64_t local = tile - base;
    while (true) {
        tile = base + local;
        if (fb.shapeIds[static_cast<size_t>(tile)] ==
            lir::kLeafTileMarker) {
            return fb.thresholds[static_cast<size_t>(tile) *
                                 fb.tileSize];
        }
        int32_t child = evalTileDynamic(fb, tile, row);
        local = arity * local + child + 1;
    }
}

float
walkDynamic(const ForestBuffers &fb, int64_t pos, const float *row)
{
    return walkDynamicFrom(
        fb, pos, fb.treeFirstTile[static_cast<size_t>(pos)], row);
}

/**
 * One tree under the interpreted hot-path prelude: run the lowered
 * branch-free comparison program first, then either return its leaf
 * or resume the tiled walk at the recorded cold entry tile. The
 * compares reproduce the cold walkers' semantics exactly — f32 NaN
 * routes by defaultLeft, and the packed-quantized layout compares in
 * the int16 domain under the same quantizer the tile records use — so
 * predictions are bit-identical with the hot path on or off.
 */
float
walkHotTree(const ForestBuffers &fb, int64_t pos, const float *row)
{
    const lir::TreeHotPath &hot =
        fb.hotPaths[static_cast<size_t>(pos)];
    if (hot.empty())
        return walkDynamic(fb, pos, row);
    bool quantized = fb.layout == LayoutKind::kPackedQuantized;
    int32_t ref = 0;
    do {
        const lir::HotPathNode &node =
            hot.nodes[static_cast<size_t>(ref)];
        float v = row[node.feature];
        bool go_left;
        if (quantized) {
            int16_t qv =
                fb.quantization.quantizeValue(v, node.feature);
            go_left = (qv == lir::kQuantizedNaN)
                          ? node.defaultLeft != 0
                          : qv < node.qthreshold;
        } else {
            go_left = std::isnan(v) ? node.defaultLeft != 0
                                    : v < node.threshold;
        }
        ref = go_left ? node.left : node.right;
    } while (ref >= 0);
    const lir::HotPathOutcome &out =
        hot.outcomes[static_cast<size_t>(-(ref + 1))];
    if (out.coldEntryTile < 0)
        return out.leafValue;
    return walkDynamicFrom(fb, pos, out.coldEntryTile, row);
}

void
runRangeDynamic(const ExecutablePlan &plan, const float *rows,
                const int32_t *qrows, int64_t begin, int64_t end,
                float *predictions)
{
    // The dynamic walker quantizes per compare inside evalTileDynamic
    // (same quantizer, still bit-exact), so a resident image brings it
    // nothing.
    (void)qrows;
    const ForestBuffers &fb = plan.buffers();
    int32_t nf = fb.numFeatures;
    int32_t classes = fb.numClasses;
    std::vector<float> margins(static_cast<size_t>(classes));
    for (int64_t r = begin; r < end; ++r) {
        const float *row = rows + r * nf;
        std::fill(margins.begin(), margins.end(), fb.baseScore);
        for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
            margins[static_cast<size_t>(
                fb.treeClass[static_cast<size_t>(pos)])] +=
                walkDynamic(fb, pos, row);
        }
        if (classes > 1) {
            float *out = predictions + r * classes;
            std::copy(margins.begin(), margins.end(), out);
            if (fb.objective == model::Objective::kMulticlassSoftmax)
                model::softmaxInPlace(out, classes);
        } else {
            predictions[r] =
                model::applyObjective(fb.objective, margins[0]);
        }
    }
}

/**
 * Range runner with the interpreted hot-path prelude. Selected over
 * every specialized kernel whenever the lowering kept any hot region:
 * the hot compares are the point of the schedule, and mixing
 * specialized group kernels with per-tree preludes would change
 * nothing for trees without one (walkHotTree falls straight through
 * to the plain walk). Traversal/interleave knobs degrade to this
 * scalar shape on the kernel backend — the source JIT is the
 * performance backend for hot paths; this runner exists for the
 * bit-exactness contract.
 */
void
runRangeHotPath(const ExecutablePlan &plan, const float *rows,
                const int32_t *qrows, int64_t begin, int64_t end,
                float *predictions)
{
    (void)qrows; // Quantizes per compare, like the dynamic walker.
    const ForestBuffers &fb = plan.buffers();
    int32_t nf = fb.numFeatures;
    int32_t classes = fb.numClasses;
    std::vector<float> margins(static_cast<size_t>(classes));
    for (int64_t r = begin; r < end; ++r) {
        const float *row = rows + r * nf;
        std::fill(margins.begin(), margins.end(), fb.baseScore);
        for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
            margins[static_cast<size_t>(
                fb.treeClass[static_cast<size_t>(pos)])] +=
                walkHotTree(fb, pos, row);
        }
        if (classes > 1) {
            float *out = predictions + r * classes;
            std::copy(margins.begin(), margins.end(), out);
            if (fb.objective == model::Objective::kMulticlassSoftmax)
                model::softmaxInPlace(out, classes);
        } else {
            predictions[r] =
                model::applyObjective(fb.objective, margins[0]);
        }
    }
}

/**
 * Quantize rows [begin, end) into one int32 per feature under the
 * model's affine maps ("quantize the row's gathered features once"):
 * every tile compare in the walk then runs entirely in int16, and a
 * feature read R times costs one quantization, not R. The image lives
 * in a per-worker thread_local scratch buffer that only ever grows, so
 * chunked parallel row loops stop paying one heap allocation per
 * chunk; the returned pointer stays valid until this worker's next
 * chunk.
 */
const int32_t *
quantizeRowsScratch(const ForestBuffers &fb, const float *rows,
                    int64_t begin, int64_t end)
{
    static thread_local std::vector<int32_t> scratch;
    size_t needed =
        static_cast<size_t>(end - begin) * fb.numFeatures;
    if (scratch.size() < needed)
        scratch.resize(needed);
    quantizeRowsInto(fb, rows + begin * fb.numFeatures, end - begin,
                     scratch.data());
    gBatchQuantizePasses.fetch_add(1, std::memory_order_relaxed);
    gBatchQuantizeRows.fetch_add(end - begin, std::memory_order_relaxed);
    return scratch.data();
}

} // namespace

/**
 * Kernel bundle for one (tile size, layout, interleave) configuration.
 * All methods compile to specialized straight-line code. The
 * quantized packed layout walks over pre-quantized rows (one int32
 * per feature, materialized per row block in runRange), so its Row
 * type differs from the f32 layouts'.
 */
template <int NT, lir::LayoutKind L, int K, bool HM>
struct PlanKernels
{
    static constexpr bool kQuantized =
        (L == LayoutKind::kPackedQuantized);
    /** Element type of the rows the walkers consume. */
    using Row = std::conditional_t<kQuantized, int32_t, float>;
    /** Record policy for the packed layouts (unused otherwise). */
    using RecordPolicy =
        std::conditional_t<kQuantized, PackedQuantizedWalk<NT, HM>,
                           PackedF32Walk<NT, HM>>;

    static float
    walkOne(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
            int64_t root, const Row *row, const TreeGroup &group)
    {
        if constexpr (lir::isPackedKind(L)) {
            if (group.unrolledWalk) {
                return walkRecordsUnrolled<RecordPolicy>(
                    fb, lut, stride, root, row, group.walkDepth);
            }
            if (group.peelDepth > 1) {
                return walkRecordsPeeled<RecordPolicy>(
                    fb, lut, stride, root, row, group.peelDepth);
            }
            return walkRecords<RecordPolicy>(fb, lut, stride, root, row);
        } else if constexpr (L == LayoutKind::kSparse) {
            if (group.unrolledWalk) {
                return walkSparseUnrolled<NT, HM>(fb, lut, stride, root, row,
                                              group.walkDepth);
            }
            if (group.peelDepth > 1) {
                return walkSparsePeeled<NT, HM>(fb, lut, stride, root, row,
                                            group.peelDepth);
            }
            return walkSparse<NT, HM>(fb, lut, stride, root, row);
        } else {
            if (group.unrolledWalk) {
                return walkArrayUnrolled<NT, HM>(fb, lut, stride, root, row,
                                             group.walkDepth);
            }
            if (group.peelDepth > 0) {
                return walkArrayPeeled<NT, HM>(fb, lut, stride, root, row,
                                           group.peelDepth);
            }
            return walkArray<NT, HM>(fb, lut, stride, root, row);
        }
    }

    static void
    walkMany(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
             const int64_t *roots, const Row *const *rows,
             const TreeGroup &group, bool pipeline, float *out)
    {
        if constexpr (lir::isPackedKind(L)) {
            // The pipeline toggle is a runtime branch (not a template
            // parameter) to keep the kernel instantiation count flat;
            // it is loop-invariant, so the predictor resolves it free.
            if (group.unrolledWalk) {
                if (pipeline) {
                    walkRecordsUnrolledInterleavedPipelined<
                        RecordPolicy, K>(fb, lut, stride, roots, rows,
                                         group.walkDepth, out);
                } else {
                    walkRecordsUnrolledInterleaved<RecordPolicy, K>(
                        fb, lut, stride, roots, rows, group.walkDepth,
                        out);
                }
            } else {
                if (pipeline) {
                    walkRecordsGenericInterleavedPipelined<
                        RecordPolicy, K>(fb, lut, stride, roots, rows,
                                         group.peelDepth, out);
                } else {
                    walkRecordsGenericInterleaved<RecordPolicy, K>(
                        fb, lut, stride, roots, rows, group.peelDepth,
                        out);
                }
            }
        } else if constexpr (L == LayoutKind::kSparse) {
            if (group.unrolledWalk) {
                walkSparseUnrolledInterleaved<NT, HM, K>(
                    fb, lut, stride, roots, rows, group.walkDepth, out);
            } else {
                walkSparseGenericInterleaved<NT, HM, K>(
                    fb, lut, stride, roots, rows, group.peelDepth, out);
            }
        } else {
            if (group.unrolledWalk) {
                walkArrayUnrolledInterleaved<NT, HM, K>(
                    fb, lut, stride, roots, rows, group.walkDepth, out);
            } else {
                walkArrayGenericInterleaved<NT, HM, K>(
                    fb, lut, stride, roots, rows, group.peelDepth, out);
            }
        }
    }

    /**
     * Multiclass execution: same loop structure, but each tree
     * accumulates into its class's margin and the row finishes with a
     * softmax over numClasses outputs.
     */
    static void
    runRangeMulticlass(const ExecutablePlan &plan, const float *rows,
                       const int32_t *qrows, int64_t begin, int64_t end,
                       float *predictions)
    {
        const ForestBuffers &fb = plan.buffers();
        const int8_t *lut = fb.shapes->lutData();
        int32_t stride = fb.shapes->lutStride();
        int32_t nf = fb.numFeatures;
        int32_t classes = fb.numClasses;
        const std::vector<TreeGroup> &groups = plan.groups();
        bool pipeline = plan.mir().schedule.pipelinePackedWalks;

        // Quantized layout: rows are consumed via a pre-quantized
        // view indexed from `origin` — the resident image when the
        // caller bound one, a per-worker scratch pass otherwise.
        const Row *rows_view = nullptr;
        int64_t origin = 0;
        if constexpr (kQuantized) {
            if (qrows != nullptr) {
                rows_view = qrows;
            } else {
                rows_view = quantizeRowsScratch(fb, rows, begin, end);
                origin = begin;
            }
        } else {
            (void)qrows;
            rows_view = rows;
        }

        auto finish_row = [&](int64_t r, float *margins) {
            float *out = predictions + r * classes;
            for (int32_t k = 0; k < classes; ++k)
                out[k] = margins[k];
            if (fb.objective == model::Objective::kMulticlassSoftmax)
                model::softmaxInPlace(out, classes);
        };

        if (plan.mir().schedule.loopOrder ==
            hir::LoopOrder::kOneTreeAtATime) {
            constexpr int64_t kRowBlock = 64;
            std::vector<float> accumulators(
                static_cast<size_t>(
                    std::min(kRowBlock, end - begin) * classes));
            for (int64_t block = begin; block < end;
                 block += kRowBlock) {
                int64_t block_end =
                    std::min<int64_t>(block + kRowBlock, end);
                std::fill(accumulators.begin(), accumulators.end(),
                          fb.baseScore);
                for (const TreeGroup &group : groups) {
                    for (int64_t pos = group.beginPos;
                         pos < group.endPos; ++pos) {
                        int32_t tree_class =
                            fb.treeClass[static_cast<size_t>(pos)];
                        int64_t root =
                            fb.treeFirstTile[static_cast<size_t>(pos)];
                        int64_t roots[K];
                        for (int k = 0; k < K; ++k)
                            roots[k] = root;
                        int64_t r = block;
                        for (; r + K <= block_end; r += K) {
                            const Row *row_ptrs[K];
                            for (int k = 0; k < K; ++k)
                                row_ptrs[k] = rows_view +
                                              (r + k - origin) * nf;
                            float out[K];
                            walkMany(fb, lut, stride, roots, row_ptrs,
                                     group, pipeline, out);
                            for (int k = 0; k < K; ++k)
                                accumulators[static_cast<size_t>(
                                    (r + k - block) * classes +
                                    tree_class)] += out[k];
                        }
                        for (; r < block_end; ++r) {
                            accumulators[static_cast<size_t>(
                                (r - block) * classes + tree_class)] +=
                                walkOne(fb, lut, stride, root,
                                        rows_view + (r - origin) * nf,
                                        group);
                        }
                    }
                }
                for (int64_t r = block; r < block_end; ++r) {
                    finish_row(r,
                               accumulators.data() +
                                   (r - block) * classes);
                }
            }
        } else {
            std::vector<float> margins(static_cast<size_t>(classes));
            for (int64_t r = begin; r < end; ++r) {
                const Row *row = rows_view + (r - origin) * nf;
                std::fill(margins.begin(), margins.end(),
                          fb.baseScore);
                for (const TreeGroup &group : groups) {
                    int64_t pos = group.beginPos;
                    for (; pos + K <= group.endPos; pos += K) {
                        int64_t roots[K];
                        const Row *row_ptrs[K];
                        for (int k = 0; k < K; ++k) {
                            roots[k] = fb.treeFirstTile[
                                static_cast<size_t>(pos + k)];
                            row_ptrs[k] = row;
                        }
                        float out[K];
                        walkMany(fb, lut, stride, roots, row_ptrs,
                                 group, pipeline, out);
                        for (int k = 0; k < K; ++k) {
                            margins[static_cast<size_t>(
                                fb.treeClass[static_cast<size_t>(
                                    pos + k)])] += out[k];
                        }
                    }
                    for (; pos < group.endPos; ++pos) {
                        margins[static_cast<size_t>(
                            fb.treeClass[static_cast<size_t>(pos)])] +=
                            walkOne(
                                fb, lut, stride,
                                fb.treeFirstTile[
                                    static_cast<size_t>(pos)],
                                row, group);
                    }
                }
                finish_row(r, margins.data());
            }
        }
    }

    static void
    runRange(const ExecutablePlan &plan, const float *rows,
             const int32_t *qrows, int64_t begin, int64_t end,
             float *predictions)
    {
        const ForestBuffers &fb = plan.buffers();
        const int8_t *lut = fb.shapes->lutData();
        int32_t stride = fb.shapes->lutStride();
        int32_t nf = fb.numFeatures;
        const std::vector<TreeGroup> &groups = plan.groups();

        if (fb.numClasses > 1) {
            runRangeMulticlass(plan, rows, qrows, begin, end,
                               predictions);
            return;
        }

        bool pipeline = plan.mir().schedule.pipelinePackedWalks;
        const Row *rows_view = nullptr;
        int64_t origin = 0;
        if constexpr (kQuantized) {
            if (qrows != nullptr) {
                rows_view = qrows;
            } else {
                rows_view = quantizeRowsScratch(fb, rows, begin, end);
                origin = begin;
            }
        } else {
            (void)qrows;
            rows_view = rows;
        }

        if (plan.mir().schedule.loopOrder ==
            hir::LoopOrder::kOneTreeAtATime) {
            // Snippet E: tree-major loops over blocks of rows with
            // per-block accumulators, rows interleaved K at a time
            // per tree. Row blocking keeps the feature working set of
            // one tree pass cache-resident even for wide feature
            // vectors (the same blocking XGBoost's tree-major
            // predictor uses). The block size adapts to the feature
            // width: narrow rows keep whole batches resident (better
            // tree locality for large models), wide rows shrink the
            // block to an L2-sized working set.
            constexpr int64_t kRowBytesBudget = 256 << 10;
            int64_t row_block = std::max<int64_t>(
                64, kRowBytesBudget /
                        (static_cast<int64_t>(nf) * 4));
            std::vector<float> accumulators(
                static_cast<size_t>(std::min(row_block, end - begin)),
                0.0f);
            for (int64_t block = begin; block < end;
                 block += row_block) {
                int64_t block_end =
                    std::min<int64_t>(block + row_block, end);
                std::fill(accumulators.begin(), accumulators.end(),
                          fb.baseScore);
                for (const TreeGroup &group : groups) {
                    for (int64_t pos = group.beginPos;
                         pos < group.endPos; ++pos) {
                        int64_t root =
                            fb.treeFirstTile[static_cast<size_t>(pos)];
                        int64_t roots[K];
                        for (int k = 0; k < K; ++k)
                            roots[k] = root;
                        int64_t r = block;
                        for (; r + K <= block_end; r += K) {
                            const Row *row_ptrs[K];
                            for (int k = 0; k < K; ++k)
                                row_ptrs[k] = rows_view +
                                              (r + k - origin) * nf;
                            float out[K];
                            walkMany(fb, lut, stride, roots, row_ptrs,
                                     group, pipeline, out);
                            for (int k = 0; k < K; ++k)
                                accumulators[static_cast<size_t>(
                                    r + k - block)] += out[k];
                        }
                        for (; r < block_end; ++r) {
                            accumulators[static_cast<size_t>(
                                r - block)] +=
                                walkOne(fb, lut, stride, root,
                                        rows_view + (r - origin) * nf,
                                        group);
                        }
                    }
                }
                for (int64_t r = block; r < block_end; ++r) {
                    predictions[r] = model::applyObjective(
                        fb.objective,
                        accumulators[static_cast<size_t>(r - block)]);
                }
            }
        } else {
            // Snippet D: per-row scalar accumulator, trees interleaved
            // K at a time within each group.
            for (int64_t r = begin; r < end; ++r) {
                const Row *row = rows_view + (r - origin) * nf;
                float margin = fb.baseScore;
                for (const TreeGroup &group : groups) {
                    int64_t pos = group.beginPos;
                    for (; pos + K <= group.endPos; pos += K) {
                        int64_t roots[K];
                        const Row *row_ptrs[K];
                        for (int k = 0; k < K; ++k) {
                            roots[k] = fb.treeFirstTile[
                                static_cast<size_t>(pos + k)];
                            row_ptrs[k] = row;
                        }
                        float out[K];
                        walkMany(fb, lut, stride, roots, row_ptrs,
                                 group, pipeline, out);
                        for (int k = 0; k < K; ++k)
                            margin += out[k];
                    }
                    for (; pos < group.endPos; ++pos) {
                        margin += walkOne(
                            fb, lut, stride,
                            fb.treeFirstTile[static_cast<size_t>(pos)],
                            row, group);
                    }
                }
                predictions[r] =
                    model::applyObjective(fb.objective, margin);
            }
        }
    }
};

/**
 * Kernel bundle for the row-parallel traversal
 * (hir::TraversalKind::kRowParallel): 8 rows walk one tree in
 * lockstep. Tile size 1 on the sparse and packed layouts runs the
 * AVX2 divergence-mask walkers (walkers.h); every other configuration
 * falls back to the node-parallel interleaved walkers driven with 8
 * identical roots and 8 consecutive rows — the same lockstep loop
 * structure, scalar per-lane evaluation. Execution is always
 * tree-major (a lane group walks one tree at a time), so loopOrder
 * and interleaveFactor are ignored; per-row accumulation still sums
 * the same leaf values in the same tree order, keeping predictions
 * bit-identical to the node-parallel kernels.
 */
template <int NT, lir::LayoutKind L, bool HM>
struct RowParallelKernels
{
    using Base = PlanKernels<NT, L, kRowParallelWidth, HM>;
    using Row = typename Base::Row;
    static constexpr bool kQuantized = Base::kQuantized;
    static constexpr bool kVectorized =
        TREEBEARD_HAS_AVX2 && NT == 1 && L != LayoutKind::kArray;

    /**
     * Lane groups walked concurrently per tree by the wide inner
     * loop: one group's walk is a serial gather chain, so several
     * independent groups in flight are what hides gather latency the
     * way interleaving hides it for the node-parallel walks.
     */
    static constexpr int kWideGroups = 4;
    static constexpr int64_t kWideRows =
        static_cast<int64_t>(kWideGroups) * kRowParallelWidth;

    /**
     * Leaf-test-free prefix length carried over from the peel/unroll
     * contracts: an unrolled walk has exactly walkDepth levels, a
     * peeled one at least peelDepth, so that many minus one steps
     * need no leaf test in any lane.
     */
    static int32_t
    uncheckedSteps(const TreeGroup &group)
    {
        return group.unrolledWalk
                   ? group.walkDepth - 1
                   : (group.peelDepth > 1 ? group.peelDepth - 1 : 0);
    }

#if TREEBEARD_HAS_AVX2
    /**
     * Walk one tree for kWideRows consecutive rows (kWideGroups lane
     * groups in flight). Only reachable when kVectorized.
     */
    static void
    walkWide(const ForestBuffers &fb, const int8_t *lut,
             const int32_t *dl32, int64_t root, const Row *rows,
             int32_t nf, const TreeGroup &group, float *out)
    {
        if constexpr (kVectorized) {
            int32_t unchecked = uncheckedSteps(group);
            if constexpr (L == LayoutKind::kSparse) {
                walkSparseRowsWide<kWideGroups>(fb, lut, dl32, root,
                                                rows, nf, unchecked,
                                                out);
            } else if constexpr (L == LayoutKind::kPacked) {
                walkPackedRowsWide<HM, kWideGroups>(
                    fb, lut, root, rows, nf, unchecked, out);
            } else {
                walkPackedQuantizedRowsWide<HM, kWideGroups>(
                    fb, lut, root, rows, nf, unchecked, out);
            }
        }
    }
#endif

    /**
     * Walk one tree for 8 consecutive rows (row-major at @p rows8,
     * stride @p nf), writing the 8 leaf values to out[0..8).
     */
    static void
    walk8(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
          const int32_t *dl32, int64_t root, const Row *rows8,
          int32_t nf, const TreeGroup &group, bool pipeline, float *out)
    {
#if TREEBEARD_HAS_AVX2
        if constexpr (kVectorized) {
            (void)stride;
            (void)pipeline;
            int32_t unchecked = uncheckedSteps(group);
            if constexpr (L == LayoutKind::kSparse) {
                walkSparseRows8(fb, lut, dl32, root, rows8, nf,
                                unchecked, out);
            } else if constexpr (L == LayoutKind::kPacked) {
                walkPackedRows8<HM>(fb, lut, root, rows8, nf, unchecked,
                                    out);
            } else {
                walkPackedQuantizedRows8<HM>(fb, lut, root, rows8, nf,
                                             unchecked, out);
            }
            return;
        }
#endif
        (void)dl32;
        int64_t roots[kRowParallelWidth];
        const Row *row_ptrs[kRowParallelWidth];
        for (int k = 0; k < kRowParallelWidth; ++k) {
            roots[k] = root;
            row_ptrs[k] = rows8 + static_cast<int64_t>(k) * nf;
        }
        Base::walkMany(fb, lut, stride, roots, row_ptrs, group,
                       pipeline, out);
    }

    static void
    runRangeMulticlass(const ExecutablePlan &plan, const float *rows,
                       const int32_t *qrows, int64_t begin, int64_t end,
                       float *predictions)
    {
        const ForestBuffers &fb = plan.buffers();
        const int8_t *lut = fb.shapes->lutData();
        int32_t stride = fb.shapes->lutStride();
        int32_t nf = fb.numFeatures;
        int32_t classes = fb.numClasses;
        const std::vector<TreeGroup> &groups = plan.groups();
        bool pipeline = plan.mir().schedule.pipelinePackedWalks;
        const int32_t *dl32 = plan.defaultLeftWide();

        const Row *rows_view = nullptr;
        int64_t origin = 0;
        if constexpr (kQuantized) {
            if (qrows != nullptr) {
                rows_view = qrows;
            } else {
                rows_view = quantizeRowsScratch(fb, rows, begin, end);
                origin = begin;
            }
        } else {
            (void)qrows;
            rows_view = rows;
        }

        constexpr int64_t kRowBlock = 64;
        std::vector<float> accumulators(static_cast<size_t>(
            std::min(kRowBlock, end - begin) * classes));
        for (int64_t block = begin; block < end; block += kRowBlock) {
            int64_t block_end =
                std::min<int64_t>(block + kRowBlock, end);
            std::fill(accumulators.begin(), accumulators.end(),
                      fb.baseScore);
            for (const TreeGroup &group : groups) {
                for (int64_t pos = group.beginPos; pos < group.endPos;
                     ++pos) {
                    int32_t tree_class =
                        fb.treeClass[static_cast<size_t>(pos)];
                    int64_t root =
                        fb.treeFirstTile[static_cast<size_t>(pos)];
                    int64_t r = block;
#if TREEBEARD_HAS_AVX2
                    if constexpr (kVectorized) {
                        for (; r + kWideRows <= block_end;
                             r += kWideRows) {
                            float out[kWideRows];
                            walkWide(fb, lut, dl32, root,
                                     rows_view + (r - origin) * nf, nf,
                                     group, out);
                            for (int k = 0; k < kWideRows; ++k)
                                accumulators[static_cast<size_t>(
                                    (r + k - block) * classes +
                                    tree_class)] += out[k];
                        }
                    }
#endif
                    for (; r + kRowParallelWidth <= block_end;
                         r += kRowParallelWidth) {
                        float out[kRowParallelWidth];
                        walk8(fb, lut, stride, dl32, root,
                              rows_view + (r - origin) * nf, nf, group,
                              pipeline, out);
                        for (int k = 0; k < kRowParallelWidth; ++k)
                            accumulators[static_cast<size_t>(
                                (r + k - block) * classes +
                                tree_class)] += out[k];
                    }
                    for (; r < block_end; ++r) {
                        accumulators[static_cast<size_t>(
                            (r - block) * classes + tree_class)] +=
                            Base::walkOne(fb, lut, stride, root,
                                          rows_view + (r - origin) * nf,
                                          group);
                    }
                }
            }
            for (int64_t r = block; r < block_end; ++r) {
                float *out = predictions + r * classes;
                const float *margins =
                    accumulators.data() + (r - block) * classes;
                for (int32_t k = 0; k < classes; ++k)
                    out[k] = margins[k];
                if (fb.objective ==
                    model::Objective::kMulticlassSoftmax)
                    model::softmaxInPlace(out, classes);
            }
        }
    }

    static void
    runRange(const ExecutablePlan &plan, const float *rows,
             const int32_t *qrows, int64_t begin, int64_t end,
             float *predictions)
    {
        const ForestBuffers &fb = plan.buffers();
        const int8_t *lut = fb.shapes->lutData();
        int32_t stride = fb.shapes->lutStride();
        int32_t nf = fb.numFeatures;
        const std::vector<TreeGroup> &groups = plan.groups();

        if (fb.numClasses > 1) {
            runRangeMulticlass(plan, rows, qrows, begin, end,
                               predictions);
            return;
        }

        bool pipeline = plan.mir().schedule.pipelinePackedWalks;
        const int32_t *dl32 = plan.defaultLeftWide();
        const Row *rows_view = nullptr;
        int64_t origin = 0;
        if constexpr (kQuantized) {
            if (qrows != nullptr) {
                rows_view = qrows;
            } else {
                rows_view = quantizeRowsScratch(fb, rows, begin, end);
                origin = begin;
            }
        } else {
            (void)qrows;
            rows_view = rows;
        }

        // Same adaptive row blocking as the node-parallel tree-major
        // loop: one tree pass touches an L2-sized slice of the batch.
        constexpr int64_t kRowBytesBudget = 256 << 10;
        int64_t row_block = std::max<int64_t>(
            64, kRowBytesBudget / (static_cast<int64_t>(nf) * 4));
        std::vector<float> accumulators(
            static_cast<size_t>(std::min(row_block, end - begin)),
            0.0f);
        for (int64_t block = begin; block < end; block += row_block) {
            int64_t block_end =
                std::min<int64_t>(block + row_block, end);
            std::fill(accumulators.begin(), accumulators.end(),
                      fb.baseScore);
            for (const TreeGroup &group : groups) {
                for (int64_t pos = group.beginPos; pos < group.endPos;
                     ++pos) {
                    int64_t root =
                        fb.treeFirstTile[static_cast<size_t>(pos)];
                    int64_t r = block;
#if TREEBEARD_HAS_AVX2
                    if constexpr (kVectorized) {
                        for (; r + kWideRows <= block_end;
                             r += kWideRows) {
                            float out[kWideRows];
                            walkWide(fb, lut, dl32, root,
                                     rows_view + (r - origin) * nf, nf,
                                     group, out);
                            for (int k = 0; k < kWideRows; ++k)
                                accumulators[static_cast<size_t>(
                                    r + k - block)] += out[k];
                        }
                    }
#endif
                    for (; r + kRowParallelWidth <= block_end;
                         r += kRowParallelWidth) {
                        float out[kRowParallelWidth];
                        walk8(fb, lut, stride, dl32, root,
                              rows_view + (r - origin) * nf, nf, group,
                              pipeline, out);
                        for (int k = 0; k < kRowParallelWidth; ++k)
                            accumulators[static_cast<size_t>(
                                r + k - block)] += out[k];
                    }
                    for (; r < block_end; ++r) {
                        accumulators[static_cast<size_t>(r - block)] +=
                            Base::walkOne(fb, lut, stride, root,
                                          rows_view + (r - origin) * nf,
                                          group);
                    }
                }
            }
            for (int64_t r = block; r < block_end; ++r) {
                predictions[r] = model::applyObjective(
                    fb.objective,
                    accumulators[static_cast<size_t>(r - block)]);
            }
        }
    }
};

namespace {

template <int NT, lir::LayoutKind L, bool HM>
ExecutablePlan::RangeRunner
selectByInterleave(int32_t factor)
{
    switch (factor) {
      case 1: return &PlanKernels<NT, L, 1, HM>::runRange;
      case 2: return &PlanKernels<NT, L, 2, HM>::runRange;
      case 4: return &PlanKernels<NT, L, 4, HM>::runRange;
      case 8: return &PlanKernels<NT, L, 8, HM>::runRange;
      default: fatal("unsupported interleave factor ", factor);
    }
}

template <int NT, lir::LayoutKind L>
ExecutablePlan::RangeRunner
selectByMissing(int32_t factor, bool handle_missing)
{
    return handle_missing ? selectByInterleave<NT, L, true>(factor)
                          : selectByInterleave<NT, L, false>(factor);
}

template <int NT>
ExecutablePlan::RangeRunner
selectByLayout(LayoutKind layout, int32_t factor, bool handle_missing)
{
    switch (layout) {
      case LayoutKind::kSparse:
        return selectByMissing<NT, LayoutKind::kSparse>(
            factor, handle_missing);
      case LayoutKind::kPacked:
        return selectByMissing<NT, LayoutKind::kPacked>(
            factor, handle_missing);
      case LayoutKind::kPackedQuantized:
        return selectByMissing<NT, LayoutKind::kPackedQuantized>(
            factor, handle_missing);
      case LayoutKind::kArray:
        return selectByMissing<NT, LayoutKind::kArray>(
            factor, handle_missing);
    }
    panic("unknown layout kind");
}

template <int NT>
ExecutablePlan::RangeRunner
selectRowParallelByLayout(LayoutKind layout, bool handle_missing)
{
    switch (layout) {
      case LayoutKind::kSparse:
        return handle_missing
                   ? &RowParallelKernels<NT, LayoutKind::kSparse,
                                         true>::runRange
                   : &RowParallelKernels<NT, LayoutKind::kSparse,
                                         false>::runRange;
      case LayoutKind::kPacked:
        return handle_missing
                   ? &RowParallelKernels<NT, LayoutKind::kPacked,
                                         true>::runRange
                   : &RowParallelKernels<NT, LayoutKind::kPacked,
                                         false>::runRange;
      case LayoutKind::kPackedQuantized:
        return handle_missing
                   ? &RowParallelKernels<NT,
                                         LayoutKind::kPackedQuantized,
                                         true>::runRange
                   : &RowParallelKernels<NT,
                                         LayoutKind::kPackedQuantized,
                                         false>::runRange;
      case LayoutKind::kArray:
        return handle_missing
                   ? &RowParallelKernels<NT, LayoutKind::kArray,
                                         true>::runRange
                   : &RowParallelKernels<NT, LayoutKind::kArray,
                                         false>::runRange;
    }
    panic("unknown layout kind");
}

} // namespace

ExecutablePlan::ExecutablePlan(lir::ForestBuffers buffers,
                               mir::MirFunction mir,
                               std::vector<hir::TreeGroup> groups)
    : buffers_(std::move(buffers)), mir_(std::move(mir)),
      groups_(std::move(groups))
{
    fatalIf(groups_.empty(), "plan needs at least one tree group");
    selectRunner();
    if (mir_.schedule.numThreads > 1) {
        pool_ = std::make_unique<ThreadPool>(
            static_cast<unsigned>(mir_.schedule.numThreads));
    }
}

void
ExecutablePlan::selectRunner()
{
    if (!buffers_.hotPaths.empty()) {
        runner_ = &runRangeHotPath;
        return;
    }
    int32_t factor = mir_.schedule.interleaveFactor;
    // Missing-value handling is on by default (NaN inputs then route
    // per default directions, all-right for models without them, and
    // stay exact through padded trees). The schedule can promise
    // NaN-free inputs to use the slightly faster kernels — unless the
    // model carries default directions, which must be honored.
    bool missing = buffers_.hasDefaultLeft ||
                   !mir_.schedule.assumeNoMissingValues;
    if (mir_.schedule.traversal == hir::TraversalKind::kRowParallel) {
        // The vectorized sparse walker gathers default-direction bits
        // as int32 words; widen the uint8 array once here (word
        // gathers from the byte array itself would read past its
        // end). Packed records carry the bit in-record. Built whenever
        // missing handling is on — not just when the model has default
        // directions: padding writes load-bearing all-left bits on
        // dummy tiles (NaN must follow the child-0 chain; the filler
        // slots are unreachable), so NaN routing needs the bits even
        // for direction-free models.
        if (missing && buffers_.layout == LayoutKind::kSparse &&
            buffers_.tileSize == 1) {
            dlWide_.assign(buffers_.defaultLeft.begin(),
                           buffers_.defaultLeft.end());
        }
        switch (buffers_.tileSize) {
          case 1:
            runner_ =
                selectRowParallelByLayout<1>(buffers_.layout, missing);
            return;
          case 2:
            runner_ =
                selectRowParallelByLayout<2>(buffers_.layout, missing);
            return;
          case 4:
            runner_ =
                selectRowParallelByLayout<4>(buffers_.layout, missing);
            return;
          case 8:
            runner_ =
                selectRowParallelByLayout<8>(buffers_.layout, missing);
            return;
          default:
            runner_ = &runRangeDynamic;
            return;
        }
    }
    switch (buffers_.tileSize) {
      case 1:
        runner_ = selectByLayout<1>(buffers_.layout, factor, missing);
        break;
      case 2:
        runner_ = selectByLayout<2>(buffers_.layout, factor, missing);
        break;
      case 4:
        runner_ = selectByLayout<4>(buffers_.layout, factor, missing);
        break;
      case 8:
        runner_ = selectByLayout<8>(buffers_.layout, factor, missing);
        break;
      default:
        // Non-power-of-two tile sizes run through the dynamic path.
        runner_ = &runRangeDynamic;
        break;
    }
}

void
ExecutablePlan::dispatchRows(const float *rows, const int32_t *qrows,
                             int64_t num_rows, float *predictions) const
{
    if (num_rows <= 0)
        return;
    if (!pool_) {
        runner_(*this, rows, qrows, 0, num_rows, predictions);
        return;
    }
    int64_t chunk_rows = mir_.schedule.rowChunkRows;
    if (chunk_rows > 0) {
        // Align chunk boundaries to the scheduled chunk size; each
        // worker still receives one contiguous span of chunks.
        int64_t num_chunks = ceilDiv(num_rows, chunk_rows);
        pool_->parallelFor(
            0, num_chunks, [&](int64_t chunk_begin, int64_t chunk_end) {
                runner_(*this, rows, qrows, chunk_begin * chunk_rows,
                        std::min(chunk_end * chunk_rows, num_rows),
                        predictions);
            });
        return;
    }
    pool_->parallelFor(0, num_rows, [&](int64_t begin, int64_t end) {
        runner_(*this, rows, qrows, begin, end, predictions);
    });
}

void
ExecutablePlan::run(const float *rows, int64_t num_rows,
                    float *predictions) const
{
    dispatchRows(rows, nullptr, num_rows, predictions);
}

void
ExecutablePlan::runResident(const float *rows, const int32_t *qrows,
                            int64_t num_rows, float *predictions) const
{
    dispatchRows(rows, qrows, num_rows, predictions);
}

void
ExecutablePlan::runInstrumented(const float *rows, int64_t num_rows,
                                float *predictions,
                                WalkCounters *counters) const
{
    const ForestBuffers &fb = buffers_;
    int32_t nf = fb.numFeatures;
    int32_t nt = fb.tileSize;
    // Bytes touched per tile evaluation: thresholds + feature indices
    // + shape id (+ child base in the sparse layout). Packed records
    // touch their full fixed stride.
    int64_t tile_bytes =
        lir::isPackedKind(fb.layout)
            ? fb.packedStride
            : nt * 8 + 2 +
                  (fb.layout == LayoutKind::kSparse ? 4 : 0);

    int32_t classes = fb.numClasses;
    std::vector<float> margins(static_cast<size_t>(classes));
    for (int64_t r = 0; r < num_rows; ++r) {
        const float *row = rows + r * nf;
        std::fill(margins.begin(), margins.end(), fb.baseScore);
        for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
            float &margin = margins[static_cast<size_t>(
                fb.treeClass[static_cast<size_t>(pos)])];
            const TreeGroup *group = nullptr;
            for (const TreeGroup &g : groups_) {
                if (pos >= g.beginPos && pos < g.endPos) {
                    group = &g;
                    break;
                }
            }
            panicIf(group == nullptr, "position not covered by a group");

            int64_t tile = fb.treeFirstTile[static_cast<size_t>(pos)];
            int64_t arity = nt + 1;
            int64_t local = 0;
            // Sparse and packed layouts chain through child bases; the
            // array layout indexes children arithmetically.
            bool chained = fb.layout != LayoutKind::kArray;
            int32_t steps = 0;
            while (true) {
                int64_t current = chained ? tile : tile + local;
                lir::ForestBuffers::TileFields fields =
                    fb.tileFields(current);
                if (!chained && fields.shapeId == lir::kLeafTileMarker) {
                    margin += fields.thresholds[0];
                    break;
                }

                // Count the in-tile path length: the node predicates a
                // plain binary walk would have evaluated here.
                int16_t shape = fields.shapeId;
                const lir::TileShape &ts = fb.shapes->shape(shape);
                // Dummy padding/hop tiles hold no real model nodes;
                // they do not contribute to the scalar-walk cost.
                // Quantized records mark them with the int16 sentinel.
                bool quantized =
                    fb.layout == LayoutKind::kPackedQuantized;
                bool is_dummy =
                    quantized
                        ? fields.qthresholds[0] == lir::kQuantizedNaN
                        : std::isinf(fields.thresholds[0]);
                uint32_t default_left = fields.defaultLeft;
                int32_t slot = 0;
                int32_t child = -1;
                while (true) {
                    if (!is_dummy)
                        counters->scalarNodesNeeded += 1;
                    int32_t feature = fields.feature(slot);
                    float value = row[feature];
                    bool go_left;
                    if (quantized) {
                        int32_t qv = fb.quantization.quantizeValue(
                            value, feature);
                        go_left =
                            qv == static_cast<int32_t>(
                                      lir::kQuantizedNaN)
                                ? ((default_left >> slot) & 1u) != 0
                                : qv < static_cast<int32_t>(
                                           fields.qthresholds[slot]);
                    } else {
                        go_left =
                            std::isnan(value)
                                ? ((default_left >> slot) & 1u) != 0
                                : value < fields.thresholds[slot];
                    }
                    int32_t next =
                        go_left ? ts.left[static_cast<size_t>(slot)]
                                : ts.right[static_cast<size_t>(slot)];
                    if (next < 0) {
                        child = fb.shapes->exitOrdinal(shape, slot,
                                                       go_left ? 0 : 1);
                        break;
                    }
                    slot = next;
                }

                counters->tilesVisited += 1;
                counters->nodePredicatesEvaluated += nt;
                counters->featureGathers += nt;
                counters->modelBytesTouched += tile_bytes;
                // Unrolled walks execute no data-dependent branches;
                // generic walks test for termination once per tile.
                if (!group->unrolledWalk &&
                    steps >= (group->peelDepth > 0 ? group->peelDepth
                                                   : 0)) {
                    counters->walkBranches += 1;
                }
                ++steps;

                if (chained) {
                    int32_t base = fields.childBase;
                    if (base < 0) {
                        margin += fb.leaves[static_cast<size_t>(
                            -(base + 1) + child)];
                        break;
                    }
                    tile = base + child;
                } else {
                    local = arity * local + child + 1;
                }
            }
        }
        if (classes > 1) {
            float *out = predictions + r * classes;
            std::copy(margins.begin(), margins.end(), out);
            if (fb.objective == model::Objective::kMulticlassSoftmax)
                model::softmaxInPlace(out, classes);
        } else {
            predictions[r] =
                model::applyObjective(fb.objective, margins[0]);
        }
    }
}

} // namespace treebeard::runtime
