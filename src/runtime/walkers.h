/**
 * @file
 * Tree-walk kernels over compiled forest buffers. Each function is the
 * runtime realization of one lowered WalkDecisionTree configuration:
 *
 *  - generic:   `while (!isLeaf(tile)) { evaluate; move; }`
 *  - peeled:    a checked-free prologue of known-safe steps followed
 *               by the generic loop (Section IV-B);
 *  - unrolled:  exactly `depth` traverseTile steps with no termination
 *               checks, valid for padded balanced trees (Figure 2 F);
 *  - interleaved<K>: K independent walks advanced in lockstep so the
 *               processor can overlap their dependency chains
 *               (Section IV-A).
 *
 * Everything is templated on the tile size NT so each configuration
 * compiles to straight-line specialized code — the stand-in for the
 * LLVM JIT of the original system.
 */
#ifndef TREEBEARD_RUNTIME_WALKERS_H
#define TREEBEARD_RUNTIME_WALKERS_H

#include <cstdint>

#include "runtime/tile_eval.h"

namespace treebeard::runtime {

using lir::ForestBuffers;

// ---------------------------------------------------------------------
// Sparse layout (Section V-B2). Termination: childBase < 0 means the
// children are leaves in the leaf pool.
// ---------------------------------------------------------------------

/** Generic sparse walk of the tree rooted at global tile @p root. */
template <int NT, bool HM>
inline float
walkSparse(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
           int64_t root, const float *row)
{
    int64_t tile = root;
    while (true) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        int32_t base = fb.childBase[static_cast<size_t>(tile)];
        if (base < 0)
            return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
        tile = base + child;
    }
}

/**
 * Peeled sparse walk: the first peel-1 steps run with no termination
 * test (safe because every root-to-leaf path crosses at least @p peel
 * internal tiles).
 */
template <int NT, bool HM>
inline float
walkSparsePeeled(const ForestBuffers &fb, const int8_t *lut,
                 int32_t stride, int64_t root, const float *row,
                 int32_t peel)
{
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < peel; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        tile = fb.childBase[static_cast<size_t>(tile)] + child;
    }
    return walkSparse<NT, HM>(fb, lut, stride, tile, row);
}

/** Fully unrolled sparse walk: exactly @p depth tile evaluations. */
template <int NT, bool HM>
inline float
walkSparseUnrolled(const ForestBuffers &fb, const int8_t *lut,
                   int32_t stride, int64_t root, const float *row,
                   int32_t depth)
{
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < depth; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        tile = fb.childBase[static_cast<size_t>(tile)] + child;
    }
    int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
    int32_t base = fb.childBase[static_cast<size_t>(tile)];
    return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
}

// ---------------------------------------------------------------------
// Packed layouts: sparse topology over fixed-stride AoS records.
// Termination matches the sparse walk (childBase < 0 => leaf pool).
// The f32 and int16-quantized record formats differ only in the field
// offsets, the stride and the row element type, so one set of walkers
// serves both precisions through a walk policy. The generic walk
// prefetches the extremes of the contiguous child block while the
// current tile's predicates evaluate, hiding the line fill of
// whichever child the LUT selects next; the interleaved walkers also
// come in software-pipelined variants that carry each lane's child
// base in a register loaded one full lane round ahead of its use.
// ---------------------------------------------------------------------

/** Walk policy for the f32 packed record format. */
template <int NT, bool HM>
struct PackedF32Walk
{
    /** Row element type the tile evaluation consumes. */
    using Row = float;
    static constexpr int kNT = NT;
    static constexpr int64_t kStride = lir::packedTileStride(NT);

    static int32_t childBase(const unsigned char *record)
    {
        return packedChildBase<NT>(record);
    }

    static int32_t eval(const unsigned char *record, const int8_t *lut,
                        int32_t lut_stride, const Row *row)
    {
        return evalTilePacked<NT, HM>(record, lut, lut_stride, row);
    }
};

/** Walk policy for the int16-quantized packed record format. */
template <int NT, bool HM>
struct PackedQuantizedWalk
{
    /** Rows are pre-quantized: one int32 per feature. */
    using Row = int32_t;
    static constexpr int kNT = NT;
    static constexpr int64_t kStride = lir::packedqTileStride(NT);

    static int32_t childBase(const unsigned char *record)
    {
        return packedqChildBase<NT>(record);
    }

    static int32_t eval(const unsigned char *record, const int8_t *lut,
                        int32_t lut_stride, const Row *row)
    {
        return evalTilePackedQuantized<NT, HM>(record, lut, lut_stride,
                                               row);
    }
};

/** Prefetch the first and last candidate child records of a tile. */
template <class P>
inline void
prefetchRecordChildren(const unsigned char *base_ptr, int32_t child_base)
{
    const unsigned char *first = base_ptr + child_base * P::kStride;
    __builtin_prefetch(first, 0, 3);
    __builtin_prefetch(first + P::kNT * P::kStride, 0, 3);
}

/** Generic record walk of the tree rooted at global tile @p root. */
template <class P>
inline float
walkRecords(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
            int64_t root, const typename P::Row *row)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile = root;
    while (true) {
        const unsigned char *record = base_ptr + tile * P::kStride;
        int32_t base = P::childBase(record);
        if (base >= 0)
            prefetchRecordChildren<P>(base_ptr, base);
        int32_t child = P::eval(record, lut, stride, row);
        if (base < 0)
            return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
        tile = base + child;
    }
}

/** Peeled record walk (same contract as walkSparsePeeled). */
template <class P>
inline float
walkRecordsPeeled(const ForestBuffers &fb, const int8_t *lut,
                  int32_t stride, int64_t root,
                  const typename P::Row *row, int32_t peel)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < peel; ++d) {
        const unsigned char *record = base_ptr + tile * P::kStride;
        int32_t base = P::childBase(record);
        prefetchRecordChildren<P>(base_ptr, base);
        int32_t child = P::eval(record, lut, stride, row);
        tile = base + child;
    }
    return walkRecords<P>(fb, lut, stride, tile, row);
}

/** Fully unrolled record walk: exactly @p depth tile evaluations. */
template <class P>
inline float
walkRecordsUnrolled(const ForestBuffers &fb, const int8_t *lut,
                    int32_t stride, int64_t root,
                    const typename P::Row *row, int32_t depth)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < depth; ++d) {
        const unsigned char *record = base_ptr + tile * P::kStride;
        int32_t base = P::childBase(record);
        prefetchRecordChildren<P>(base_ptr, base);
        int32_t child = P::eval(record, lut, stride, row);
        tile = base + child;
    }
    const unsigned char *record = base_ptr + tile * P::kStride;
    int32_t child = P::eval(record, lut, stride, row);
    int32_t base = P::childBase(record);
    return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
}

/** Compatibility aliases for the f32 packed walkers. */
template <int NT, bool HM>
inline float
walkPacked(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
           int64_t root, const float *row)
{
    return walkRecords<PackedF32Walk<NT, HM>>(fb, lut, stride, root,
                                              row);
}

template <int NT, bool HM>
inline float
walkPackedPeeled(const ForestBuffers &fb, const int8_t *lut,
                 int32_t stride, int64_t root, const float *row,
                 int32_t peel)
{
    return walkRecordsPeeled<PackedF32Walk<NT, HM>>(fb, lut, stride,
                                                    root, row, peel);
}

template <int NT, bool HM>
inline float
walkPackedUnrolled(const ForestBuffers &fb, const int8_t *lut,
                   int32_t stride, int64_t root, const float *row,
                   int32_t depth)
{
    return walkRecordsUnrolled<PackedF32Walk<NT, HM>>(fb, lut, stride,
                                                      root, row, depth);
}

// ---------------------------------------------------------------------
// Array layout (Section V-B1). Tiles form an implicit (NT+1)-ary
// array per tree; leaf tiles carry kLeafTileMarker.
// ---------------------------------------------------------------------

/** Generic array-layout walk of the tree whose block starts at @p base. */
template <int NT, bool HM>
inline float
walkArray(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
          int64_t base, const float *row)
{
    int64_t local = 0;
    while (true) {
        int64_t tile = base + local;
        if (fb.shapeIds[static_cast<size_t>(tile)] == lir::kLeafTileMarker)
            return fb.thresholds[static_cast<size_t>(tile) * NT];
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        local = (NT + 1) * local + child + 1;
    }
}

/** Peeled array walk: the first @p peel iterations skip the leaf test. */
template <int NT, bool HM>
inline float
walkArrayPeeled(const ForestBuffers &fb, const int8_t *lut,
                int32_t stride, int64_t base, const float *row,
                int32_t peel)
{
    int64_t local = 0;
    for (int32_t d = 0; d < peel; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, base + local, row);
        local = (NT + 1) * local + child + 1;
    }
    // Continue with the generic checked loop from the current tile.
    while (true) {
        int64_t tile = base + local;
        if (fb.shapeIds[static_cast<size_t>(tile)] == lir::kLeafTileMarker)
            return fb.thresholds[static_cast<size_t>(tile) * NT];
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        local = (NT + 1) * local + child + 1;
    }
}

/** Fully unrolled array walk: @p depth evaluations then the leaf read. */
template <int NT, bool HM>
inline float
walkArrayUnrolled(const ForestBuffers &fb, const int8_t *lut,
                  int32_t stride, int64_t base, const float *row,
                  int32_t depth)
{
    int64_t local = 0;
    for (int32_t d = 0; d < depth; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, base + local, row);
        local = (NT + 1) * local + child + 1;
    }
    return fb.thresholds[static_cast<size_t>(base + local) * NT];
}

// ---------------------------------------------------------------------
// Interleaved walks (Section IV-A): K independent (root, row) pairs in
// lockstep. `roots` and `rows` each have K entries; results go to
// `out[0..K)`. The same primitives serve row interleaving (same tree,
// K rows) and tree interleaving (K trees, same row).
// ---------------------------------------------------------------------

/** Interleaved fully unrolled sparse walks. */
template <int NT, bool HM, int K>
inline void
walkSparseUnrolledInterleaved(const ForestBuffers &fb, const int8_t *lut,
                              int32_t stride, const int64_t *roots,
                              const float *const *rows, int32_t depth,
                              float *out)
{
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < depth; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child =
                evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
            tile[k] = fb.childBase[static_cast<size_t>(tile[k])] + child;
        }
    }
    for (int k = 0; k < K; ++k) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
        int32_t base = fb.childBase[static_cast<size_t>(tile[k])];
        out[k] = fb.leaves[static_cast<size_t>(-(base + 1) + child)];
    }
}

/** Interleaved generic (optionally peeled) sparse walks. */
template <int NT, bool HM, int K>
inline void
walkSparseGenericInterleaved(const ForestBuffers &fb, const int8_t *lut,
                             int32_t stride, const int64_t *roots,
                             const float *const *rows, int32_t peel,
                             float *out)
{
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child =
                evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
            tile[k] = fb.childBase[static_cast<size_t>(tile[k])] + child;
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            int32_t child =
                evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
            int32_t base = fb.childBase[static_cast<size_t>(tile[k])];
            if (base < 0) {
                out[k] =
                    fb.leaves[static_cast<size_t>(-(base + 1) + child)];
                done |= 1u << k;
            } else {
                tile[k] = base + child;
            }
        }
    }
}

/** Interleaved fully unrolled record walks (prefetch-hint variant). */
template <class P, int K>
inline void
walkRecordsUnrolledInterleaved(const ForestBuffers &fb,
                               const int8_t *lut, int32_t stride,
                               const int64_t *roots,
                               const typename P::Row *const *rows,
                               int32_t depth, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < depth; ++d) {
        // Prefetch every lane's child block first, then evaluate: the
        // loads of lane k's next record overlap the other lanes' work.
        for (int k = 0; k < K; ++k) {
            prefetchRecordChildren<P>(
                base_ptr,
                P::childBase(base_ptr + tile[k] * P::kStride));
        }
        for (int k = 0; k < K; ++k) {
            const unsigned char *record =
                base_ptr + tile[k] * P::kStride;
            int32_t child = P::eval(record, lut, stride, rows[k]);
            tile[k] = P::childBase(record) + child;
        }
    }
    for (int k = 0; k < K; ++k) {
        const unsigned char *record = base_ptr + tile[k] * P::kStride;
        int32_t child = P::eval(record, lut, stride, rows[k]);
        int32_t base = P::childBase(record);
        out[k] = fb.leaves[static_cast<size_t>(-(base + 1) + child)];
    }
}

/**
 * Software-pipelined interleaved unrolled record walks: each lane
 * carries its current record pointer and that record's child base in
 * registers; advancing lane k issues the next record's child-base
 * load a full K-1 lanes of work before its next use, so the dependent
 * line fill overlaps the other lanes' evaluations instead of relying
 * on prefetch hints.
 */
template <class P, int K>
inline void
walkRecordsUnrolledInterleavedPipelined(
    const ForestBuffers &fb, const int8_t *lut, int32_t stride,
    const int64_t *roots, const typename P::Row *const *rows,
    int32_t depth, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    const unsigned char *rec[K];
    int32_t base[K];
    for (int k = 0; k < K; ++k) {
        rec[k] = base_ptr + roots[k] * P::kStride;
        base[k] = P::childBase(rec[k]);
    }
    for (int32_t d = 0; d + 1 < depth; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = P::eval(rec[k], lut, stride, rows[k]);
            rec[k] = base_ptr +
                     static_cast<int64_t>(base[k] + child) * P::kStride;
            base[k] = P::childBase(rec[k]);
        }
    }
    // The final records' child bases are already in flight (negative:
    // leaf-pool offsets).
    for (int k = 0; k < K; ++k) {
        int32_t child = P::eval(rec[k], lut, stride, rows[k]);
        out[k] =
            fb.leaves[static_cast<size_t>(-(base[k] + 1) + child)];
    }
}

/** Interleaved generic (optionally peeled) record walks. */
template <class P, int K>
inline void
walkRecordsGenericInterleaved(const ForestBuffers &fb,
                              const int8_t *lut, int32_t stride,
                              const int64_t *roots,
                              const typename P::Row *const *rows,
                              int32_t peel, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            const unsigned char *record =
                base_ptr + tile[k] * P::kStride;
            int32_t child = P::eval(record, lut, stride, rows[k]);
            tile[k] = P::childBase(record) + child;
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            const unsigned char *record =
                base_ptr + tile[k] * P::kStride;
            int32_t base = P::childBase(record);
            if (base >= 0)
                prefetchRecordChildren<P>(base_ptr, base);
            int32_t child = P::eval(record, lut, stride, rows[k]);
            if (base < 0) {
                out[k] =
                    fb.leaves[static_cast<size_t>(-(base + 1) + child)];
                done |= 1u << k;
            } else {
                tile[k] = base + child;
            }
        }
    }
}

/**
 * Software-pipelined interleaved generic record walks: like the
 * unrolled pipelined variant, but each lane checks its register-held
 * child base for leaf termination before advancing.
 */
template <class P, int K>
inline void
walkRecordsGenericInterleavedPipelined(
    const ForestBuffers &fb, const int8_t *lut, int32_t stride,
    const int64_t *roots, const typename P::Row *const *rows,
    int32_t peel, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    const unsigned char *rec[K];
    int32_t base[K];
    for (int k = 0; k < K; ++k) {
        rec[k] = base_ptr + roots[k] * P::kStride;
        base[k] = P::childBase(rec[k]);
    }
    for (int32_t d = 0; d + 1 < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = P::eval(rec[k], lut, stride, rows[k]);
            rec[k] = base_ptr +
                     static_cast<int64_t>(base[k] + child) * P::kStride;
            base[k] = P::childBase(rec[k]);
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            int32_t child = P::eval(rec[k], lut, stride, rows[k]);
            if (base[k] < 0) {
                out[k] = fb.leaves[static_cast<size_t>(
                    -(base[k] + 1) + child)];
                done |= 1u << k;
            } else {
                rec[k] = base_ptr +
                         static_cast<int64_t>(base[k] + child) *
                             P::kStride;
                base[k] = P::childBase(rec[k]);
            }
        }
    }
}

/** Compatibility aliases for the f32 packed interleaved walkers. */
template <int NT, bool HM, int K>
inline void
walkPackedUnrolledInterleaved(const ForestBuffers &fb, const int8_t *lut,
                              int32_t stride, const int64_t *roots,
                              const float *const *rows, int32_t depth,
                              float *out)
{
    walkRecordsUnrolledInterleaved<PackedF32Walk<NT, HM>, K>(
        fb, lut, stride, roots, rows, depth, out);
}

template <int NT, bool HM, int K>
inline void
walkPackedGenericInterleaved(const ForestBuffers &fb, const int8_t *lut,
                             int32_t stride, const int64_t *roots,
                             const float *const *rows, int32_t peel,
                             float *out)
{
    walkRecordsGenericInterleaved<PackedF32Walk<NT, HM>, K>(
        fb, lut, stride, roots, rows, peel, out);
}

/** Interleaved fully unrolled array walks. */
template <int NT, bool HM, int K>
inline void
walkArrayUnrolledInterleaved(const ForestBuffers &fb, const int8_t *lut,
                             int32_t stride, const int64_t *bases,
                             const float *const *rows, int32_t depth,
                             float *out)
{
    int64_t local[K] = {};
    for (int32_t d = 0; d < depth; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = evalTile<NT, HM>(fb, lut, stride,
                                         bases[k] + local[k], rows[k]);
            local[k] = (NT + 1) * local[k] + child + 1;
        }
    }
    for (int k = 0; k < K; ++k) {
        out[k] = fb.thresholds[static_cast<size_t>(bases[k] + local[k]) *
                               NT];
    }
}

// ---------------------------------------------------------------------
// Row-parallel (batch-major) vectorized walks: the FIL-style traversal
// shape selected by hir::TraversalKind::kRowParallel. Eight rows of a
// row-major block walk ONE tree in lockstep, one SIMD lane per row:
// each step gathers the lanes' current tile fields, gathers each
// lane's feature value from its own row, and blends every lane to its
// own child; a done-mask retires lanes whose walk reached a leaf
// (their tile index is frozen so trailing gathers stay in bounds, and
// the masked leaf gather makes the out[] write idempotent). Only tile
// size 1 is vectorized this way — at NT == 1 the per-node predicate is
// a single compare, so vectorizing across rows recovers the SIMD width
// that node-parallel evaluation cannot use; larger tile sizes keep the
// node-parallel tile kernels and get their row parallelism from the
// scalar lockstep fallback in the plan.
//
// Missing-value semantics match the scalar predicate bit for bit:
// NaN lanes compare false (unordered) and are OR'd with the node's
// default-left bit. The sparse layout reads that bit through an
// int32-widened shadow of ForestBuffers::defaultLeft (@p dl32; word
// gathers from the uint8 array itself would read past its end) —
// a null @p dl32 means the schedule promised NaN-free inputs
// (assumeNoMissingValues), skipping the NaN path entirely. The bits
// matter even for models without default directions: padded dummy
// tiles carry all-left bits that keep NaN lanes on the child-0 chain
// (their filler slots are unreachable). Packed records gather the bit
// from inside the 16-byte record, which is always in bounds.
// ---------------------------------------------------------------------

/** Rows per row-parallel lane group (__m256 width). */
constexpr int32_t kRowParallelWidth = 8;

#if TREEBEARD_HAS_AVX2

/**
 * Row-parallel sparse walk, tile size 1: @p G lane groups of 8 rows
 * each (row-major at @p rows, stride @p num_features) walk the tree
 * rooted at @p root; leaf values go to out[0..8G). The first
 * @p unchecked steps skip the leaf test (the peel/unroll contract:
 * every root-to-leaf path crosses more than @p unchecked internal
 * tiles).
 *
 * The groups exist purely to hide gather latency: one group's walk is
 * a serial gather->compare->blend->gather chain, so G independent
 * chains in flight keep the load ports busy the way the interleaved
 * node-parallel walks do. Groups that retire all 8 lanes drop out of
 * the loop individually; per-row results are independent of G.
 */
template <int G>
inline void
walkSparseRowsWide(const ForestBuffers &fb, const int8_t *lut,
                   const int32_t *dl32, int64_t root, const float *rows,
                   int64_t num_features, int32_t unchecked, float *out)
{
    const float *thresholds = fb.thresholds.data();
    const int32_t *features = fb.featureIndices.data();
    const int32_t *child_base = fb.childBase.data();
    const float *leaves = fb.leaves.data();
    const int32_t nf = static_cast<int32_t>(num_features);
    // Lane l reads row l of its group's block: feature addresses are
    // fi + l * num_features off the group's first row.
    const __m256i lane_row = _mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(nf));
    // NT == 1 has a single tile shape (id 0), so the LUT collapses to
    // two entries: child on predicate-false vs predicate-true.
    const __m256i child_false = _mm256_set1_epi32(lut[0]);
    const __m256i child_true = _mm256_set1_epi32(lut[1]);
    const __m256i ones = _mm256_set1_epi32(1);
    __m256i tile[G];
    const float *rows_g[G];
    for (int g = 0; g < G; ++g) {
        tile[g] = _mm256_set1_epi32(static_cast<int32_t>(root));
        rows_g[g] = rows + static_cast<int64_t>(g) *
                               kRowParallelWidth * num_features;
    }

    auto step = [&](__m256i t, const float *rg) {
        __m256 th = _mm256_i32gather_ps(thresholds, t, 4);
        __m256i fi = _mm256_i32gather_epi32(features, t, 4);
        __m256 fv = _mm256_i32gather_ps(
            rg, _mm256_add_epi32(fi, lane_row), 4);
        __m256 go_left = _mm256_cmp_ps(fv, th, _CMP_LT_OQ);
        if (dl32 != nullptr) {
            __m256 missing = _mm256_cmp_ps(fv, fv, _CMP_UNORD_Q);
            __m256i dl = _mm256_i32gather_epi32(dl32, t, 4);
            __m256 dlm = _mm256_castsi256_ps(
                _mm256_cmpgt_epi32(dl, _mm256_setzero_si256()));
            go_left = _mm256_or_ps(go_left,
                                   _mm256_and_ps(missing, dlm));
        }
        return _mm256_blendv_epi8(child_false, child_true,
                                  _mm256_castps_si256(go_left));
    };

    for (int32_t d = 0; d < unchecked; ++d) {
        for (int g = 0; g < G; ++g) {
            __m256i child = step(tile[g], rows_g[g]);
            __m256i base =
                _mm256_i32gather_epi32(child_base, tile[g], 4);
            tile[g] = _mm256_add_epi32(base, child);
        }
    }
    __m256 result[G];
    __m256i done[G];
    for (int g = 0; g < G; ++g) {
        result[g] = _mm256_setzero_ps();
        done[g] = _mm256_setzero_si256();
    }
    uint32_t active = (G >= 32) ? ~0u : ((1u << G) - 1);
    while (active != 0) {
        for (int g = 0; g < G; ++g) {
            if (!(active & (1u << g)))
                continue;
            __m256i child = step(tile[g], rows_g[g]);
            __m256i base =
                _mm256_i32gather_epi32(child_base, tile[g], 4);
            // base < 0: the children are leaves in the leaf pool at
            // -(base + 1) + child.
            __m256i leaf =
                _mm256_cmpgt_epi32(_mm256_setzero_si256(), base);
            __m256i leaf_index = _mm256_sub_epi32(
                child, _mm256_add_epi32(base, ones));
            result[g] = _mm256_mask_i32gather_ps(
                result[g], leaves, leaf_index,
                _mm256_castsi256_ps(leaf), 4);
            done[g] = _mm256_or_si256(done[g], leaf);
            if (_mm256_movemask_ps(_mm256_castsi256_ps(done[g])) ==
                0xff) {
                active &= ~(1u << g);
                continue;
            }
            // Retired lanes stay on their final tile so the next
            // iteration's gathers remain in bounds.
            tile[g] = _mm256_blendv_epi8(
                _mm256_add_epi32(base, child), tile[g], leaf);
        }
    }
    for (int g = 0; g < G; ++g)
        _mm256_storeu_ps(out + g * kRowParallelWidth, result[g]);
}

/** Single-group (8-row) sparse wrapper for remainder blocks. */
inline void
walkSparseRows8(const ForestBuffers &fb, const int8_t *lut,
                const int32_t *dl32, int64_t root, const float *rows,
                int64_t num_features, int32_t unchecked, float *out)
{
    walkSparseRowsWide<1>(fb, lut, dl32, root, rows, num_features,
                          unchecked, out);
}

/**
 * Row-parallel walk over NT == 1 packed f32 records (16-byte stride:
 * word 0 f32 threshold, word 1 feature|shape, word 2 default-left
 * byte, word 3 child base) for @p G lane groups of 8 rows. All field
 * gathers are 4-byte words inside the record, so no shadow array is
 * needed. See walkSparseRowsWide for the group-interleaving rationale.
 */
template <bool HM, int G>
inline void
walkPackedRowsWide(const ForestBuffers &fb, const int8_t *lut,
                   int64_t root, const float *rows,
                   int64_t num_features, int32_t unchecked, float *out)
{
    static_assert(lir::packedTileStride(1) == 16,
                  "NT==1 packed record must be 4 words");
    const float *pd_f32 =
        reinterpret_cast<const float *>(fb.packedData());
    const int32_t *pd_i32 =
        reinterpret_cast<const int32_t *>(fb.packedData());
    const float *leaves = fb.leaves.data();
    const int32_t nf = static_cast<int32_t>(num_features);
    const __m256i lane_row = _mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(nf));
    const __m256i child_false = _mm256_set1_epi32(lut[0]);
    const __m256i child_true = _mm256_set1_epi32(lut[1]);
    const __m256i ones = _mm256_set1_epi32(1);
    __m256i tile[G];
    const float *rows_g[G];
    for (int g = 0; g < G; ++g) {
        tile[g] = _mm256_set1_epi32(static_cast<int32_t>(root));
        rows_g[g] = rows + static_cast<int64_t>(g) *
                               kRowParallelWidth * num_features;
    }

    auto step = [&](__m256i t, const float *rg) {
        // Word index of the lanes' records: tile * (stride / 4).
        __m256i w = _mm256_slli_epi32(t, 2);
        __m256 th = _mm256_i32gather_ps(pd_f32, w, 4);
        __m256i w1 = _mm256_i32gather_epi32(
            pd_i32, _mm256_add_epi32(w, ones), 4);
        // Low 16 bits of word 1: the int16 feature index.
        __m256i fi = _mm256_srai_epi32(_mm256_slli_epi32(w1, 16), 16);
        __m256 fv = _mm256_i32gather_ps(
            rg, _mm256_add_epi32(fi, lane_row), 4);
        __m256 go_left = _mm256_cmp_ps(fv, th, _CMP_LT_OQ);
        if constexpr (HM) {
            __m256 missing = _mm256_cmp_ps(fv, fv, _CMP_UNORD_Q);
            __m256i w2 = _mm256_i32gather_epi32(
                pd_i32, _mm256_add_epi32(w, _mm256_set1_epi32(2)), 4);
            __m256i dl = _mm256_and_si256(w2, ones);
            __m256 dlm = _mm256_castsi256_ps(
                _mm256_cmpgt_epi32(dl, _mm256_setzero_si256()));
            go_left = _mm256_or_ps(go_left,
                                   _mm256_and_ps(missing, dlm));
        }
        __m256i base = _mm256_i32gather_epi32(
            pd_i32, _mm256_add_epi32(w, _mm256_set1_epi32(3)), 4);
        __m256i child = _mm256_blendv_epi8(
            child_false, child_true, _mm256_castps_si256(go_left));
        struct { __m256i child, base; } r = {child, base};
        return r;
    };

    for (int32_t d = 0; d < unchecked; ++d) {
        for (int g = 0; g < G; ++g) {
            auto r = step(tile[g], rows_g[g]);
            tile[g] = _mm256_add_epi32(r.base, r.child);
        }
    }
    __m256 result[G];
    __m256i done[G];
    for (int g = 0; g < G; ++g) {
        result[g] = _mm256_setzero_ps();
        done[g] = _mm256_setzero_si256();
    }
    uint32_t active = (G >= 32) ? ~0u : ((1u << G) - 1);
    while (active != 0) {
        for (int g = 0; g < G; ++g) {
            if (!(active & (1u << g)))
                continue;
            auto r = step(tile[g], rows_g[g]);
            __m256i leaf =
                _mm256_cmpgt_epi32(_mm256_setzero_si256(), r.base);
            __m256i leaf_index = _mm256_sub_epi32(
                r.child, _mm256_add_epi32(r.base, ones));
            result[g] = _mm256_mask_i32gather_ps(
                result[g], leaves, leaf_index,
                _mm256_castsi256_ps(leaf), 4);
            done[g] = _mm256_or_si256(done[g], leaf);
            if (_mm256_movemask_ps(_mm256_castsi256_ps(done[g])) ==
                0xff) {
                active &= ~(1u << g);
                continue;
            }
            tile[g] = _mm256_blendv_epi8(
                _mm256_add_epi32(r.base, r.child), tile[g], leaf);
        }
    }
    for (int g = 0; g < G; ++g)
        _mm256_storeu_ps(out + g * kRowParallelWidth, result[g]);
}

/** Single-group (8-row) packed f32 wrapper for remainder blocks. */
template <bool HM>
inline void
walkPackedRows8(const ForestBuffers &fb, const int8_t *lut,
                int64_t root, const float *rows, int64_t num_features,
                int32_t unchecked, float *out)
{
    walkPackedRowsWide<HM, 1>(fb, lut, root, rows, num_features,
                              unchecked, out);
}

/**
 * Row-parallel walk over NT == 1 quantized packed records (16-byte
 * stride: word 0 int16 threshold | uint8 feature, word 1 shape |
 * default-left byte, word 2 child base) against @p G lane groups of 8
 * pre-quantized rows (@p qrows, int32 per feature). Comparison and
 * NaN-sentinel
 * semantics match evalTilePackedQuantized exactly, so predictDataset
 * over the resident image takes this path with no extra work.
 */
template <bool HM, int G>
inline void
walkPackedQuantizedRowsWide(const ForestBuffers &fb, const int8_t *lut,
                            int64_t root, const int32_t *qrows,
                            int64_t num_features, int32_t unchecked,
                            float *out)
{
    static_assert(lir::packedqTileStride(1) == 16,
                  "NT==1 quantized record must be 4 words");
    const int32_t *pd_i32 =
        reinterpret_cast<const int32_t *>(fb.packedData());
    const float *leaves = fb.leaves.data();
    const int32_t nf = static_cast<int32_t>(num_features);
    const __m256i lane_row = _mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(nf));
    const __m256i child_false = _mm256_set1_epi32(lut[0]);
    const __m256i child_true = _mm256_set1_epi32(lut[1]);
    const __m256i ones = _mm256_set1_epi32(1);
    __m256i tile[G];
    const int32_t *qrows_g[G];
    for (int g = 0; g < G; ++g) {
        tile[g] = _mm256_set1_epi32(static_cast<int32_t>(root));
        qrows_g[g] = qrows + static_cast<int64_t>(g) *
                                 kRowParallelWidth * num_features;
    }

    auto step = [&](__m256i t, const int32_t *rg) {
        __m256i w = _mm256_slli_epi32(t, 2);
        __m256i w0 = _mm256_i32gather_epi32(pd_i32, w, 4);
        // Low 16 bits: int16 threshold (sign-extended); bits 16..23:
        // the uint8 feature index.
        __m256i th = _mm256_srai_epi32(_mm256_slli_epi32(w0, 16), 16);
        __m256i fi = _mm256_and_si256(_mm256_srli_epi32(w0, 16),
                                      _mm256_set1_epi32(0xff));
        __m256i qv = _mm256_i32gather_epi32(
            rg, _mm256_add_epi32(fi, lane_row), 4);
        __m256i go_left = _mm256_cmpgt_epi32(th, qv);
        if constexpr (HM) {
            __m256i missing = _mm256_cmpeq_epi32(
                qv, _mm256_set1_epi32(lir::kQuantizedNaN));
            __m256i w1 = _mm256_i32gather_epi32(
                pd_i32, _mm256_add_epi32(w, ones), 4);
            __m256i dl = _mm256_and_si256(_mm256_srli_epi32(w1, 16),
                                          ones);
            __m256i dlm =
                _mm256_cmpgt_epi32(dl, _mm256_setzero_si256());
            go_left = _mm256_or_si256(go_left,
                                      _mm256_and_si256(missing, dlm));
        }
        __m256i base = _mm256_i32gather_epi32(
            pd_i32, _mm256_add_epi32(w, _mm256_set1_epi32(2)), 4);
        __m256i child =
            _mm256_blendv_epi8(child_false, child_true, go_left);
        struct { __m256i child, base; } r = {child, base};
        return r;
    };

    for (int32_t d = 0; d < unchecked; ++d) {
        for (int g = 0; g < G; ++g) {
            auto r = step(tile[g], qrows_g[g]);
            tile[g] = _mm256_add_epi32(r.base, r.child);
        }
    }
    __m256 result[G];
    __m256i done[G];
    for (int g = 0; g < G; ++g) {
        result[g] = _mm256_setzero_ps();
        done[g] = _mm256_setzero_si256();
    }
    uint32_t active = (G >= 32) ? ~0u : ((1u << G) - 1);
    while (active != 0) {
        for (int g = 0; g < G; ++g) {
            if (!(active & (1u << g)))
                continue;
            auto r = step(tile[g], qrows_g[g]);
            __m256i leaf =
                _mm256_cmpgt_epi32(_mm256_setzero_si256(), r.base);
            __m256i leaf_index = _mm256_sub_epi32(
                r.child, _mm256_add_epi32(r.base, ones));
            result[g] = _mm256_mask_i32gather_ps(
                result[g], leaves, leaf_index,
                _mm256_castsi256_ps(leaf), 4);
            done[g] = _mm256_or_si256(done[g], leaf);
            if (_mm256_movemask_ps(_mm256_castsi256_ps(done[g])) ==
                0xff) {
                active &= ~(1u << g);
                continue;
            }
            tile[g] = _mm256_blendv_epi8(
                _mm256_add_epi32(r.base, r.child), tile[g], leaf);
        }
    }
    for (int g = 0; g < G; ++g)
        _mm256_storeu_ps(out + g * kRowParallelWidth, result[g]);
}

/** Single-group (8-row) quantized packed wrapper for remainders. */
template <bool HM>
inline void
walkPackedQuantizedRows8(const ForestBuffers &fb, const int8_t *lut,
                         int64_t root, const int32_t *qrows,
                         int64_t num_features, int32_t unchecked,
                         float *out)
{
    walkPackedQuantizedRowsWide<HM, 1>(fb, lut, root, qrows,
                                       num_features, unchecked, out);
}

#endif // TREEBEARD_HAS_AVX2

/** Interleaved generic (optionally peeled) array walks. */
template <int NT, bool HM, int K>
inline void
walkArrayGenericInterleaved(const ForestBuffers &fb, const int8_t *lut,
                            int32_t stride, const int64_t *bases,
                            const float *const *rows, int32_t peel,
                            float *out)
{
    int64_t local[K] = {};
    for (int32_t d = 0; d < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = evalTile<NT, HM>(fb, lut, stride,
                                         bases[k] + local[k], rows[k]);
            local[k] = (NT + 1) * local[k] + child + 1;
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            int64_t tile = bases[k] + local[k];
            if (fb.shapeIds[static_cast<size_t>(tile)] ==
                lir::kLeafTileMarker) {
                out[k] = fb.thresholds[static_cast<size_t>(tile) * NT];
                done |= 1u << k;
                continue;
            }
            int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, rows[k]);
            local[k] = (NT + 1) * local[k] + child + 1;
        }
    }
}

} // namespace treebeard::runtime

#endif // TREEBEARD_RUNTIME_WALKERS_H
