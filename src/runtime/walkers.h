/**
 * @file
 * Tree-walk kernels over compiled forest buffers. Each function is the
 * runtime realization of one lowered WalkDecisionTree configuration:
 *
 *  - generic:   `while (!isLeaf(tile)) { evaluate; move; }`
 *  - peeled:    a checked-free prologue of known-safe steps followed
 *               by the generic loop (Section IV-B);
 *  - unrolled:  exactly `depth` traverseTile steps with no termination
 *               checks, valid for padded balanced trees (Figure 2 F);
 *  - interleaved<K>: K independent walks advanced in lockstep so the
 *               processor can overlap their dependency chains
 *               (Section IV-A).
 *
 * Everything is templated on the tile size NT so each configuration
 * compiles to straight-line specialized code — the stand-in for the
 * LLVM JIT of the original system.
 */
#ifndef TREEBEARD_RUNTIME_WALKERS_H
#define TREEBEARD_RUNTIME_WALKERS_H

#include <cstdint>

#include "runtime/tile_eval.h"

namespace treebeard::runtime {

using lir::ForestBuffers;

// ---------------------------------------------------------------------
// Sparse layout (Section V-B2). Termination: childBase < 0 means the
// children are leaves in the leaf pool.
// ---------------------------------------------------------------------

/** Generic sparse walk of the tree rooted at global tile @p root. */
template <int NT, bool HM>
inline float
walkSparse(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
           int64_t root, const float *row)
{
    int64_t tile = root;
    while (true) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        int32_t base = fb.childBase[static_cast<size_t>(tile)];
        if (base < 0)
            return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
        tile = base + child;
    }
}

/**
 * Peeled sparse walk: the first peel-1 steps run with no termination
 * test (safe because every root-to-leaf path crosses at least @p peel
 * internal tiles).
 */
template <int NT, bool HM>
inline float
walkSparsePeeled(const ForestBuffers &fb, const int8_t *lut,
                 int32_t stride, int64_t root, const float *row,
                 int32_t peel)
{
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < peel; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        tile = fb.childBase[static_cast<size_t>(tile)] + child;
    }
    return walkSparse<NT, HM>(fb, lut, stride, tile, row);
}

/** Fully unrolled sparse walk: exactly @p depth tile evaluations. */
template <int NT, bool HM>
inline float
walkSparseUnrolled(const ForestBuffers &fb, const int8_t *lut,
                   int32_t stride, int64_t root, const float *row,
                   int32_t depth)
{
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < depth; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        tile = fb.childBase[static_cast<size_t>(tile)] + child;
    }
    int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
    int32_t base = fb.childBase[static_cast<size_t>(tile)];
    return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
}

// ---------------------------------------------------------------------
// Packed layouts: sparse topology over fixed-stride AoS records.
// Termination matches the sparse walk (childBase < 0 => leaf pool).
// The f32 and int16-quantized record formats differ only in the field
// offsets, the stride and the row element type, so one set of walkers
// serves both precisions through a walk policy. The generic walk
// prefetches the extremes of the contiguous child block while the
// current tile's predicates evaluate, hiding the line fill of
// whichever child the LUT selects next; the interleaved walkers also
// come in software-pipelined variants that carry each lane's child
// base in a register loaded one full lane round ahead of its use.
// ---------------------------------------------------------------------

/** Walk policy for the f32 packed record format. */
template <int NT, bool HM>
struct PackedF32Walk
{
    /** Row element type the tile evaluation consumes. */
    using Row = float;
    static constexpr int kNT = NT;
    static constexpr int64_t kStride = lir::packedTileStride(NT);

    static int32_t childBase(const unsigned char *record)
    {
        return packedChildBase<NT>(record);
    }

    static int32_t eval(const unsigned char *record, const int8_t *lut,
                        int32_t lut_stride, const Row *row)
    {
        return evalTilePacked<NT, HM>(record, lut, lut_stride, row);
    }
};

/** Walk policy for the int16-quantized packed record format. */
template <int NT, bool HM>
struct PackedQuantizedWalk
{
    /** Rows are pre-quantized: one int32 per feature. */
    using Row = int32_t;
    static constexpr int kNT = NT;
    static constexpr int64_t kStride = lir::packedqTileStride(NT);

    static int32_t childBase(const unsigned char *record)
    {
        return packedqChildBase<NT>(record);
    }

    static int32_t eval(const unsigned char *record, const int8_t *lut,
                        int32_t lut_stride, const Row *row)
    {
        return evalTilePackedQuantized<NT, HM>(record, lut, lut_stride,
                                               row);
    }
};

/** Prefetch the first and last candidate child records of a tile. */
template <class P>
inline void
prefetchRecordChildren(const unsigned char *base_ptr, int32_t child_base)
{
    const unsigned char *first = base_ptr + child_base * P::kStride;
    __builtin_prefetch(first, 0, 3);
    __builtin_prefetch(first + P::kNT * P::kStride, 0, 3);
}

/** Generic record walk of the tree rooted at global tile @p root. */
template <class P>
inline float
walkRecords(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
            int64_t root, const typename P::Row *row)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile = root;
    while (true) {
        const unsigned char *record = base_ptr + tile * P::kStride;
        int32_t base = P::childBase(record);
        if (base >= 0)
            prefetchRecordChildren<P>(base_ptr, base);
        int32_t child = P::eval(record, lut, stride, row);
        if (base < 0)
            return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
        tile = base + child;
    }
}

/** Peeled record walk (same contract as walkSparsePeeled). */
template <class P>
inline float
walkRecordsPeeled(const ForestBuffers &fb, const int8_t *lut,
                  int32_t stride, int64_t root,
                  const typename P::Row *row, int32_t peel)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < peel; ++d) {
        const unsigned char *record = base_ptr + tile * P::kStride;
        int32_t base = P::childBase(record);
        prefetchRecordChildren<P>(base_ptr, base);
        int32_t child = P::eval(record, lut, stride, row);
        tile = base + child;
    }
    return walkRecords<P>(fb, lut, stride, tile, row);
}

/** Fully unrolled record walk: exactly @p depth tile evaluations. */
template <class P>
inline float
walkRecordsUnrolled(const ForestBuffers &fb, const int8_t *lut,
                    int32_t stride, int64_t root,
                    const typename P::Row *row, int32_t depth)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile = root;
    for (int32_t d = 0; d + 1 < depth; ++d) {
        const unsigned char *record = base_ptr + tile * P::kStride;
        int32_t base = P::childBase(record);
        prefetchRecordChildren<P>(base_ptr, base);
        int32_t child = P::eval(record, lut, stride, row);
        tile = base + child;
    }
    const unsigned char *record = base_ptr + tile * P::kStride;
    int32_t child = P::eval(record, lut, stride, row);
    int32_t base = P::childBase(record);
    return fb.leaves[static_cast<size_t>(-(base + 1) + child)];
}

/** Compatibility aliases for the f32 packed walkers. */
template <int NT, bool HM>
inline float
walkPacked(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
           int64_t root, const float *row)
{
    return walkRecords<PackedF32Walk<NT, HM>>(fb, lut, stride, root,
                                              row);
}

template <int NT, bool HM>
inline float
walkPackedPeeled(const ForestBuffers &fb, const int8_t *lut,
                 int32_t stride, int64_t root, const float *row,
                 int32_t peel)
{
    return walkRecordsPeeled<PackedF32Walk<NT, HM>>(fb, lut, stride,
                                                    root, row, peel);
}

template <int NT, bool HM>
inline float
walkPackedUnrolled(const ForestBuffers &fb, const int8_t *lut,
                   int32_t stride, int64_t root, const float *row,
                   int32_t depth)
{
    return walkRecordsUnrolled<PackedF32Walk<NT, HM>>(fb, lut, stride,
                                                      root, row, depth);
}

// ---------------------------------------------------------------------
// Array layout (Section V-B1). Tiles form an implicit (NT+1)-ary
// array per tree; leaf tiles carry kLeafTileMarker.
// ---------------------------------------------------------------------

/** Generic array-layout walk of the tree whose block starts at @p base. */
template <int NT, bool HM>
inline float
walkArray(const ForestBuffers &fb, const int8_t *lut, int32_t stride,
          int64_t base, const float *row)
{
    int64_t local = 0;
    while (true) {
        int64_t tile = base + local;
        if (fb.shapeIds[static_cast<size_t>(tile)] == lir::kLeafTileMarker)
            return fb.thresholds[static_cast<size_t>(tile) * NT];
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        local = (NT + 1) * local + child + 1;
    }
}

/** Peeled array walk: the first @p peel iterations skip the leaf test. */
template <int NT, bool HM>
inline float
walkArrayPeeled(const ForestBuffers &fb, const int8_t *lut,
                int32_t stride, int64_t base, const float *row,
                int32_t peel)
{
    int64_t local = 0;
    for (int32_t d = 0; d < peel; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, base + local, row);
        local = (NT + 1) * local + child + 1;
    }
    // Continue with the generic checked loop from the current tile.
    while (true) {
        int64_t tile = base + local;
        if (fb.shapeIds[static_cast<size_t>(tile)] == lir::kLeafTileMarker)
            return fb.thresholds[static_cast<size_t>(tile) * NT];
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, row);
        local = (NT + 1) * local + child + 1;
    }
}

/** Fully unrolled array walk: @p depth evaluations then the leaf read. */
template <int NT, bool HM>
inline float
walkArrayUnrolled(const ForestBuffers &fb, const int8_t *lut,
                  int32_t stride, int64_t base, const float *row,
                  int32_t depth)
{
    int64_t local = 0;
    for (int32_t d = 0; d < depth; ++d) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, base + local, row);
        local = (NT + 1) * local + child + 1;
    }
    return fb.thresholds[static_cast<size_t>(base + local) * NT];
}

// ---------------------------------------------------------------------
// Interleaved walks (Section IV-A): K independent (root, row) pairs in
// lockstep. `roots` and `rows` each have K entries; results go to
// `out[0..K)`. The same primitives serve row interleaving (same tree,
// K rows) and tree interleaving (K trees, same row).
// ---------------------------------------------------------------------

/** Interleaved fully unrolled sparse walks. */
template <int NT, bool HM, int K>
inline void
walkSparseUnrolledInterleaved(const ForestBuffers &fb, const int8_t *lut,
                              int32_t stride, const int64_t *roots,
                              const float *const *rows, int32_t depth,
                              float *out)
{
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < depth; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child =
                evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
            tile[k] = fb.childBase[static_cast<size_t>(tile[k])] + child;
        }
    }
    for (int k = 0; k < K; ++k) {
        int32_t child = evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
        int32_t base = fb.childBase[static_cast<size_t>(tile[k])];
        out[k] = fb.leaves[static_cast<size_t>(-(base + 1) + child)];
    }
}

/** Interleaved generic (optionally peeled) sparse walks. */
template <int NT, bool HM, int K>
inline void
walkSparseGenericInterleaved(const ForestBuffers &fb, const int8_t *lut,
                             int32_t stride, const int64_t *roots,
                             const float *const *rows, int32_t peel,
                             float *out)
{
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child =
                evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
            tile[k] = fb.childBase[static_cast<size_t>(tile[k])] + child;
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            int32_t child =
                evalTile<NT, HM>(fb, lut, stride, tile[k], rows[k]);
            int32_t base = fb.childBase[static_cast<size_t>(tile[k])];
            if (base < 0) {
                out[k] =
                    fb.leaves[static_cast<size_t>(-(base + 1) + child)];
                done |= 1u << k;
            } else {
                tile[k] = base + child;
            }
        }
    }
}

/** Interleaved fully unrolled record walks (prefetch-hint variant). */
template <class P, int K>
inline void
walkRecordsUnrolledInterleaved(const ForestBuffers &fb,
                               const int8_t *lut, int32_t stride,
                               const int64_t *roots,
                               const typename P::Row *const *rows,
                               int32_t depth, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < depth; ++d) {
        // Prefetch every lane's child block first, then evaluate: the
        // loads of lane k's next record overlap the other lanes' work.
        for (int k = 0; k < K; ++k) {
            prefetchRecordChildren<P>(
                base_ptr,
                P::childBase(base_ptr + tile[k] * P::kStride));
        }
        for (int k = 0; k < K; ++k) {
            const unsigned char *record =
                base_ptr + tile[k] * P::kStride;
            int32_t child = P::eval(record, lut, stride, rows[k]);
            tile[k] = P::childBase(record) + child;
        }
    }
    for (int k = 0; k < K; ++k) {
        const unsigned char *record = base_ptr + tile[k] * P::kStride;
        int32_t child = P::eval(record, lut, stride, rows[k]);
        int32_t base = P::childBase(record);
        out[k] = fb.leaves[static_cast<size_t>(-(base + 1) + child)];
    }
}

/**
 * Software-pipelined interleaved unrolled record walks: each lane
 * carries its current record pointer and that record's child base in
 * registers; advancing lane k issues the next record's child-base
 * load a full K-1 lanes of work before its next use, so the dependent
 * line fill overlaps the other lanes' evaluations instead of relying
 * on prefetch hints.
 */
template <class P, int K>
inline void
walkRecordsUnrolledInterleavedPipelined(
    const ForestBuffers &fb, const int8_t *lut, int32_t stride,
    const int64_t *roots, const typename P::Row *const *rows,
    int32_t depth, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    const unsigned char *rec[K];
    int32_t base[K];
    for (int k = 0; k < K; ++k) {
        rec[k] = base_ptr + roots[k] * P::kStride;
        base[k] = P::childBase(rec[k]);
    }
    for (int32_t d = 0; d + 1 < depth; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = P::eval(rec[k], lut, stride, rows[k]);
            rec[k] = base_ptr +
                     static_cast<int64_t>(base[k] + child) * P::kStride;
            base[k] = P::childBase(rec[k]);
        }
    }
    // The final records' child bases are already in flight (negative:
    // leaf-pool offsets).
    for (int k = 0; k < K; ++k) {
        int32_t child = P::eval(rec[k], lut, stride, rows[k]);
        out[k] =
            fb.leaves[static_cast<size_t>(-(base[k] + 1) + child)];
    }
}

/** Interleaved generic (optionally peeled) record walks. */
template <class P, int K>
inline void
walkRecordsGenericInterleaved(const ForestBuffers &fb,
                              const int8_t *lut, int32_t stride,
                              const int64_t *roots,
                              const typename P::Row *const *rows,
                              int32_t peel, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    int64_t tile[K];
    for (int k = 0; k < K; ++k)
        tile[k] = roots[k];
    for (int32_t d = 0; d + 1 < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            const unsigned char *record =
                base_ptr + tile[k] * P::kStride;
            int32_t child = P::eval(record, lut, stride, rows[k]);
            tile[k] = P::childBase(record) + child;
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            const unsigned char *record =
                base_ptr + tile[k] * P::kStride;
            int32_t base = P::childBase(record);
            if (base >= 0)
                prefetchRecordChildren<P>(base_ptr, base);
            int32_t child = P::eval(record, lut, stride, rows[k]);
            if (base < 0) {
                out[k] =
                    fb.leaves[static_cast<size_t>(-(base + 1) + child)];
                done |= 1u << k;
            } else {
                tile[k] = base + child;
            }
        }
    }
}

/**
 * Software-pipelined interleaved generic record walks: like the
 * unrolled pipelined variant, but each lane checks its register-held
 * child base for leaf termination before advancing.
 */
template <class P, int K>
inline void
walkRecordsGenericInterleavedPipelined(
    const ForestBuffers &fb, const int8_t *lut, int32_t stride,
    const int64_t *roots, const typename P::Row *const *rows,
    int32_t peel, float *out)
{
    const unsigned char *base_ptr = fb.packedData();
    const unsigned char *rec[K];
    int32_t base[K];
    for (int k = 0; k < K; ++k) {
        rec[k] = base_ptr + roots[k] * P::kStride;
        base[k] = P::childBase(rec[k]);
    }
    for (int32_t d = 0; d + 1 < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = P::eval(rec[k], lut, stride, rows[k]);
            rec[k] = base_ptr +
                     static_cast<int64_t>(base[k] + child) * P::kStride;
            base[k] = P::childBase(rec[k]);
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            int32_t child = P::eval(rec[k], lut, stride, rows[k]);
            if (base[k] < 0) {
                out[k] = fb.leaves[static_cast<size_t>(
                    -(base[k] + 1) + child)];
                done |= 1u << k;
            } else {
                rec[k] = base_ptr +
                         static_cast<int64_t>(base[k] + child) *
                             P::kStride;
                base[k] = P::childBase(rec[k]);
            }
        }
    }
}

/** Compatibility aliases for the f32 packed interleaved walkers. */
template <int NT, bool HM, int K>
inline void
walkPackedUnrolledInterleaved(const ForestBuffers &fb, const int8_t *lut,
                              int32_t stride, const int64_t *roots,
                              const float *const *rows, int32_t depth,
                              float *out)
{
    walkRecordsUnrolledInterleaved<PackedF32Walk<NT, HM>, K>(
        fb, lut, stride, roots, rows, depth, out);
}

template <int NT, bool HM, int K>
inline void
walkPackedGenericInterleaved(const ForestBuffers &fb, const int8_t *lut,
                             int32_t stride, const int64_t *roots,
                             const float *const *rows, int32_t peel,
                             float *out)
{
    walkRecordsGenericInterleaved<PackedF32Walk<NT, HM>, K>(
        fb, lut, stride, roots, rows, peel, out);
}

/** Interleaved fully unrolled array walks. */
template <int NT, bool HM, int K>
inline void
walkArrayUnrolledInterleaved(const ForestBuffers &fb, const int8_t *lut,
                             int32_t stride, const int64_t *bases,
                             const float *const *rows, int32_t depth,
                             float *out)
{
    int64_t local[K] = {};
    for (int32_t d = 0; d < depth; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = evalTile<NT, HM>(fb, lut, stride,
                                         bases[k] + local[k], rows[k]);
            local[k] = (NT + 1) * local[k] + child + 1;
        }
    }
    for (int k = 0; k < K; ++k) {
        out[k] = fb.thresholds[static_cast<size_t>(bases[k] + local[k]) *
                               NT];
    }
}

/** Interleaved generic (optionally peeled) array walks. */
template <int NT, bool HM, int K>
inline void
walkArrayGenericInterleaved(const ForestBuffers &fb, const int8_t *lut,
                            int32_t stride, const int64_t *bases,
                            const float *const *rows, int32_t peel,
                            float *out)
{
    int64_t local[K] = {};
    for (int32_t d = 0; d < peel; ++d) {
        for (int k = 0; k < K; ++k) {
            int32_t child = evalTile<NT, HM>(fb, lut, stride,
                                         bases[k] + local[k], rows[k]);
            local[k] = (NT + 1) * local[k] + child + 1;
        }
    }
    uint32_t done = 0;
    const uint32_t all_done = (K >= 32) ? ~0u : ((1u << K) - 1);
    while (done != all_done) {
        for (int k = 0; k < K; ++k) {
            if (done & (1u << k))
                continue;
            int64_t tile = bases[k] + local[k];
            if (fb.shapeIds[static_cast<size_t>(tile)] ==
                lir::kLeafTileMarker) {
                out[k] = fb.thresholds[static_cast<size_t>(tile) * NT];
                done |= 1u << k;
                continue;
            }
            int32_t child = evalTile<NT, HM>(fb, lut, stride, tile, rows[k]);
            local[k] = (NT + 1) * local[k] + child + 1;
        }
    }
}

} // namespace treebeard::runtime

#endif // TREEBEARD_RUNTIME_WALKERS_H
