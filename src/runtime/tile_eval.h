/**
 * @file
 * Tile predicate evaluation: the innermost operation of the vectorized
 * tree walk (Section V-A listing, lines 10-22). One call speculatively
 * evaluates all node predicates of a tile, packs the comparison bits
 * into an integer and looks up the child index in the shape LUT.
 *
 * The templated scalar path compiles to fully unrolled straight-line
 * code for each tile size; the NT == 8 and NT == 4 paths use AVX2
 * vector loads, a feature gather, a vector compare and a movemask when
 * the build enables AVX2, exactly the instruction sequence the paper's
 * LLVM-generated code uses. Lane i always evaluates tile slot i and
 * maps to outcome bit i, matching the LUT's bit convention.
 */
#ifndef TREEBEARD_RUNTIME_TILE_EVAL_H
#define TREEBEARD_RUNTIME_TILE_EVAL_H

#include <cstdint>

#include "lir/forest_buffers.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define TREEBEARD_HAS_AVX2 1
#else
#define TREEBEARD_HAS_AVX2 0
#endif

namespace treebeard::runtime {

/**
 * Evaluate the predicates of the tile at global index @p tile against
 * @p row and return the LUT child index.
 *
 * @tparam NT the compile-time tile size (1, 2, 4 or 8).
 * @tparam HandleMissing when true, NaN feature values follow the
 *         tile's default-direction bits (needed only for models that
 *         carry per-node default directions; plans select it via
 *         ForestBuffers::hasDefaultLeft). When false, NaN lanes
 *         simply compare false (route right), with no extra work.
 */
template <int NT, bool HandleMissing>
inline int32_t
evalTile(const lir::ForestBuffers &fb, const int8_t *lut,
         int32_t lut_stride, int64_t tile, const float *row)
{
    const float *thresholds = fb.thresholds.data() + tile * NT;
    const int32_t *features = fb.featureIndices.data() + tile * NT;
    int16_t shape = fb.shapeIds[static_cast<size_t>(tile)];
    [[maybe_unused]] uint32_t default_left =
        fb.defaultLeft[static_cast<size_t>(tile)];

#if TREEBEARD_HAS_AVX2
    if constexpr (NT == 8) {
        __m256 th = _mm256_loadu_ps(thresholds);
        __m256i fi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(features));
        __m256 fv = _mm256_i32gather_ps(row, fi, 4);
        __m256 cmp = _mm256_cmp_ps(fv, th, _CMP_LT_OQ);
        uint32_t outcome =
            static_cast<uint32_t>(_mm256_movemask_ps(cmp));
        if constexpr (HandleMissing) {
            // Missing (NaN) lanes compare false; route them per the
            // tile's default-direction bits instead.
            __m256 missing = _mm256_cmp_ps(fv, fv, _CMP_UNORD_Q);
            outcome |=
                static_cast<uint32_t>(_mm256_movemask_ps(missing)) &
                default_left;
        }
        return lut[static_cast<size_t>(shape) * lut_stride + outcome];
    }
    if constexpr (NT == 4) {
        __m128 th = _mm_loadu_ps(thresholds);
        __m128i fi = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(features));
        __m128 fv = _mm_i32gather_ps(row, fi, 4);
        __m128 cmp = _mm_cmplt_ps(fv, th);
        uint32_t outcome = static_cast<uint32_t>(_mm_movemask_ps(cmp));
        if constexpr (HandleMissing) {
            __m128 missing = _mm_cmpunord_ps(fv, fv);
            outcome |=
                static_cast<uint32_t>(_mm_movemask_ps(missing)) &
                default_left;
        }
        return lut[static_cast<size_t>(shape) * lut_stride + outcome];
    }
#endif

    uint32_t outcome = 0;
    for (int s = 0; s < NT; ++s) {
        float value = row[features[s]];
        uint32_t bit = static_cast<uint32_t>(value < thresholds[s]);
        if constexpr (HandleMissing) {
            // Branchless: OR in the default-left bit when the value
            // is NaN (both comparisons lower to setcc).
            bit |= static_cast<uint32_t>(value != value) &
                   ((default_left >> s) & 1u);
        }
        outcome |= bit << s;
    }
    return lut[static_cast<size_t>(shape) * lut_stride + outcome];
}

// ---------------------------------------------------------------------
// Packed layout: the whole tile is one fixed-stride record; @p record
// points at its first byte (lir::ForestBuffers::packedTileRecord).
// Field offsets are compile-time constants of NT, so a tile
// evaluation issues loads against a single cache line.
// ---------------------------------------------------------------------

/** Child-base field of a packed tile record. */
template <int NT>
inline int32_t
packedChildBase(const unsigned char *record)
{
    int32_t base;
    __builtin_memcpy(&base, record + lir::packedChildBaseOffset(NT),
                     sizeof(int32_t));
    return base;
}

/**
 * As evalTile, reading every field from the packed record at
 * @p record instead of the SoA arrays.
 */
template <int NT, bool HandleMissing>
inline int32_t
evalTilePacked(const unsigned char *record, const int8_t *lut,
               int32_t lut_stride, const float *row)
{
    const float *thresholds = reinterpret_cast<const float *>(record);
    const int16_t *features = reinterpret_cast<const int16_t *>(
        record + lir::packedFeaturesOffset(NT));
    int16_t shape;
    __builtin_memcpy(&shape, record + lir::packedShapeOffset(NT),
                     sizeof(int16_t));
    [[maybe_unused]] uint32_t default_left =
        record[lir::packedDefaultLeftOffset(NT)];

#if TREEBEARD_HAS_AVX2
    if constexpr (NT == 8) {
        __m256 th = _mm256_loadu_ps(thresholds);
        // 8 x int16 -> 8 x int32 for the gather.
        __m128i fi16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(features));
        __m256i fi = _mm256_cvtepi16_epi32(fi16);
        __m256 fv = _mm256_i32gather_ps(row, fi, 4);
        __m256 cmp = _mm256_cmp_ps(fv, th, _CMP_LT_OQ);
        uint32_t outcome =
            static_cast<uint32_t>(_mm256_movemask_ps(cmp));
        if constexpr (HandleMissing) {
            __m256 missing = _mm256_cmp_ps(fv, fv, _CMP_UNORD_Q);
            outcome |=
                static_cast<uint32_t>(_mm256_movemask_ps(missing)) &
                default_left;
        }
        return lut[static_cast<size_t>(shape) * lut_stride + outcome];
    }
    if constexpr (NT == 4) {
        __m128 th = _mm_loadu_ps(thresholds);
        __m128i fi16 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(features));
        __m128i fi = _mm_cvtepi16_epi32(fi16);
        __m128 fv = _mm_i32gather_ps(row, fi, 4);
        __m128 cmp = _mm_cmplt_ps(fv, th);
        uint32_t outcome = static_cast<uint32_t>(_mm_movemask_ps(cmp));
        if constexpr (HandleMissing) {
            __m128 missing = _mm_cmpunord_ps(fv, fv);
            outcome |=
                static_cast<uint32_t>(_mm_movemask_ps(missing)) &
                default_left;
        }
        return lut[static_cast<size_t>(shape) * lut_stride + outcome];
    }
#endif

    uint32_t outcome = 0;
    for (int s = 0; s < NT; ++s) {
        float value = row[features[s]];
        uint32_t bit = static_cast<uint32_t>(value < thresholds[s]);
        if constexpr (HandleMissing) {
            bit |= static_cast<uint32_t>(value != value) &
                   ((default_left >> s) & 1u);
        }
        outcome |= bit << s;
    }
    return lut[static_cast<size_t>(shape) * lut_stride + outcome];
}

// ---------------------------------------------------------------------
// Quantized packed layout: same record-per-tile discipline, but the
// thresholds are int16 under the model's per-feature affine maps and
// the row has been pre-quantized into one int32 per feature (see
// QuantizationInfo::quantizeValue). The compare runs in int32 over
// sign-extended thresholds — outcome-identical to an int16 compare
// since both sides are in int16 range; a lane holding the
// kQuantizedNaN sentinel (a NaN row value) compares false against
// every populated threshold and is routed by the default-direction
// bits, exactly like the f32 NaN path.
// ---------------------------------------------------------------------

/** Child-base field of a quantized packed tile record. */
template <int NT>
inline int32_t
packedqChildBase(const unsigned char *record)
{
    int32_t base;
    __builtin_memcpy(&base, record + lir::packedqChildBaseOffset(NT),
                     sizeof(int32_t));
    return base;
}

/**
 * As evalTilePacked, but @p qrow holds the row's quantized feature
 * values (int32 per feature, each already in int16 range).
 */
template <int NT, bool HandleMissing>
inline int32_t
evalTilePackedQuantized(const unsigned char *record, const int8_t *lut,
                        int32_t lut_stride, const int32_t *qrow)
{
    const int16_t *thresholds =
        reinterpret_cast<const int16_t *>(record);
    const uint8_t *features = record + lir::packedqFeaturesOffset(NT);
    int16_t shape;
    __builtin_memcpy(&shape, record + lir::packedqShapeOffset(NT),
                     sizeof(int16_t));
    [[maybe_unused]] uint32_t default_left =
        record[lir::packedqDefaultLeftOffset(NT)];

#if TREEBEARD_HAS_AVX2
    if constexpr (NT == 8) {
        // Sign-extend the int16 thresholds to int32 (off the gather's
        // critical path) and compare in epi32: identical results to
        // an int16 compare since both sides are in int16 range, and
        // the walk's serial tile->tile dependence chain stays as
        // short as the f32 path's.
        __m256i th = _mm256_cvtepi16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(thresholds)));
        __m128i fi8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(features));
        __m256i fi = _mm256_cvtepu8_epi32(fi8);
        __m256i qv = _mm256_i32gather_epi32(qrow, fi, 4);
        __m256i lt = _mm256_cmpgt_epi32(th, qv);
        uint32_t outcome = static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(lt)));
        if constexpr (HandleMissing) {
            __m256i missing = _mm256_cmpeq_epi32(
                qv, _mm256_set1_epi32(lir::kQuantizedNaN));
            outcome |= static_cast<uint32_t>(_mm256_movemask_ps(
                           _mm256_castsi256_ps(missing))) &
                       default_left;
        }
        return lut[static_cast<size_t>(shape) * lut_stride + outcome];
    }
    if constexpr (NT == 4) {
        __m128i th = _mm_cvtepi16_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(thresholds)));
        uint32_t fi_bytes;
        __builtin_memcpy(&fi_bytes, features, sizeof(fi_bytes));
        __m128i fi8 = _mm_cvtsi32_si128(static_cast<int32_t>(fi_bytes));
        __m128i fi = _mm_cvtepu8_epi32(fi8);
        __m128i qv = _mm_i32gather_epi32(qrow, fi, 4);
        __m128i lt = _mm_cmpgt_epi32(th, qv);
        uint32_t outcome = static_cast<uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(lt)));
        if constexpr (HandleMissing) {
            __m128i missing = _mm_cmpeq_epi32(
                qv, _mm_set1_epi32(lir::kQuantizedNaN));
            outcome |= static_cast<uint32_t>(_mm_movemask_ps(
                           _mm_castsi128_ps(missing))) &
                       default_left;
        }
        return lut[static_cast<size_t>(shape) * lut_stride + outcome];
    }
#endif

    uint32_t outcome = 0;
    for (int s = 0; s < NT; ++s) {
        int32_t value = qrow[features[s]];
        uint32_t bit = static_cast<uint32_t>(
            value < static_cast<int32_t>(thresholds[s]));
        if constexpr (HandleMissing) {
            bit |= static_cast<uint32_t>(
                       value ==
                       static_cast<int32_t>(lir::kQuantizedNaN)) &
                   ((default_left >> s) & 1u);
        }
        outcome |= bit << s;
    }
    return lut[static_cast<size_t>(shape) * lut_stride + outcome];
}

/**
 * Runtime-tile-size variant used by reference/instrumented paths;
 * layout-agnostic via ForestBuffers::tileFields. The quantized layout
 * quantizes each gathered value on the fly — bit-identical to the
 * kernels' pre-quantized rows since quantizeValue is deterministic.
 */
inline int32_t
evalTileDynamic(const lir::ForestBuffers &fb, int64_t tile,
                const float *row)
{
    int32_t nt = fb.tileSize;
    lir::ForestBuffers::TileFields fields = fb.tileFields(tile);
    uint32_t default_left = fields.defaultLeft;
    uint32_t outcome = 0;
    if (fb.layout == lir::LayoutKind::kPackedQuantized) {
        for (int32_t s = 0; s < nt; ++s) {
            int32_t feature = fields.feature(s);
            int32_t value = fb.quantization.quantizeValue(
                row[feature], feature);
            uint32_t lt = static_cast<uint32_t>(
                value < static_cast<int32_t>(fields.qthresholds[s]));
            uint32_t nan_left =
                static_cast<uint32_t>(
                    value == static_cast<int32_t>(lir::kQuantizedNaN)) &
                ((default_left >> s) & 1u);
            outcome |= (lt | nan_left) << s;
        }
        return fb.shapes->child(fields.shapeId, outcome);
    }
    for (int32_t s = 0; s < nt; ++s) {
        float value = row[fields.feature(s)];
        uint32_t lt = static_cast<uint32_t>(value < fields.thresholds[s]);
        uint32_t nan_left = static_cast<uint32_t>(value != value) &
                            ((default_left >> s) & 1u);
        outcome |= (lt | nan_left) << s;
    }
    return fb.shapes->child(fields.shapeId, outcome);
}

} // namespace treebeard::runtime

#endif // TREEBEARD_RUNTIME_TILE_EVAL_H
