/**
 * @file
 * The executable plan: the final lowering target. A plan binds the
 * MIR loop structure and the LIR buffers to specialized native kernels
 * (the walkers), standing in for the LLVM-JIT'd predictForest function
 * of the original system. Plans are immutable and thread-compatible;
 * run() may be called concurrently.
 */
#ifndef TREEBEARD_RUNTIME_PLAN_H
#define TREEBEARD_RUNTIME_PLAN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "hir/hir_module.h"
#include "lir/forest_buffers.h"
#include "mir/mir.h"

namespace treebeard::runtime {

/**
 * Process-wide counters for row-quantization work on the i16 packed
 * path. batchPasses counts per-predict-call quantization passes (the
 * cost predictDataset exists to avoid); datasetBinds counts
 * quantize-once passes performed when a Dataset is bound. Monotonic,
 * updated with relaxed atomics — intended for tests and benches, not
 * for precise accounting across threads mid-flight.
 */
struct RowQuantizationStats
{
    int64_t batchPasses = 0;
    int64_t batchRows = 0;
    int64_t datasetBinds = 0;
    int64_t datasetRows = 0;
};

/** Snapshot of the process-wide row-quantization counters. */
RowQuantizationStats rowQuantizationStats();

/** Record one dataset-bind quantization pass over @p num_rows rows. */
void noteDatasetQuantization(int64_t num_rows);

/**
 * Quantize @p num_rows row-major rows into one int32 per feature under
 * @p fb's affine maps, writing num_rows * fb.numFeatures values to
 * @p out. This is the transform the i16 packed walkers consume; the
 * resident-dataset path runs it once at bind time instead of on every
 * predict call.
 */
void quantizeRowsInto(const lir::ForestBuffers &fb, const float *rows,
                      int64_t num_rows, int32_t *out);

/** Software event counters for the microarchitectural analysis bench. */
struct WalkCounters
{
    /** Tile evaluations performed (speculative included). */
    int64_t tilesVisited = 0;
    /** Node predicates evaluated (tileSize per tile evaluation). */
    int64_t nodePredicatesEvaluated = 0;
    /** Node predicates a plain binary walk would have evaluated. */
    int64_t scalarNodesNeeded = 0;
    /** Feature gather element loads. */
    int64_t featureGathers = 0;
    /** Distinct model bytes touched (approximate: per tile visit). */
    int64_t modelBytesTouched = 0;
    /** Data-dependent branches a traversal executes. */
    int64_t walkBranches = 0;

    void
    add(const WalkCounters &other)
    {
        tilesVisited += other.tilesVisited;
        nodePredicatesEvaluated += other.nodePredicatesEvaluated;
        scalarNodesNeeded += other.scalarNodesNeeded;
        featureGathers += other.featureGathers;
        modelBytesTouched += other.modelBytesTouched;
        walkBranches += other.walkBranches;
    }
};

/**
 * A compiled, runnable predictForest.
 */
class ExecutablePlan
{
  public:
    /**
     * Assemble a plan. Normally produced by treebeard::compile;
     * constructing one directly is useful in tests.
     */
    ExecutablePlan(lir::ForestBuffers buffers, mir::MirFunction mir,
                   std::vector<hir::TreeGroup> groups);

    ExecutablePlan(ExecutablePlan &&) = default;
    ExecutablePlan &operator=(ExecutablePlan &&) = default;

    /**
     * The predictForest entry point: compute predictions for
     * @p num_rows rows (row-major, numFeatures() floats each).
     * @param predictions num_rows * numClasses() outputs (multiclass
     *        models emit per-class probabilities per row).
     */
    void run(const float *rows, int64_t num_rows,
             float *predictions) const;

    /**
     * As run(), but with a pre-quantized int32 row image (@p qrows,
     * num_rows * numFeatures() values from quantizeRowsInto) so the
     * quantized packed walkers skip their per-call quantization pass.
     * Layouts that do not consume quantized rows ignore @p qrows and
     * read @p rows; callers must always pass both. @p qrows may be
     * null, which degrades to run().
     */
    void runResident(const float *rows, const int32_t *qrows,
                     int64_t num_rows, float *predictions) const;

    /**
     * As run(), but through the instrumented (unoptimized-speed)
     * kernels, accumulating software event counters.
     */
    void runInstrumented(const float *rows, int64_t num_rows,
                         float *predictions, WalkCounters *counters)
        const;

    const lir::ForestBuffers &buffers() const { return buffers_; }
    const mir::MirFunction &mir() const { return mir_; }
    const std::vector<hir::TreeGroup> &groups() const { return groups_; }

    /**
     * Int32-widened shadow of ForestBuffers::defaultLeft, built only
     * for row-parallel sparse plans that route missing values: the
     * row-parallel walker gathers default-direction bits with 4-byte
     * word gathers, which would read past the end of the uint8 array.
     * Null when this plan never consults it.
     */
    const int32_t *defaultLeftWide() const
    {
        return dlWide_.empty() ? nullptr : dlWide_.data();
    }
    int32_t numFeatures() const { return buffers_.numFeatures; }
    /** Outputs per row: 1, or the class count for multiclass models. */
    int32_t numClasses() const { return buffers_.numClasses; }
    int32_t numThreads() const { return mir_.schedule.numThreads; }

    /**
     * Serial execution over the row range [begin, end). The third
     * argument is an optional resident quantized row image (indexed
     * from row 0, or null to quantize per chunk).
     */
    using RangeRunner = void (*)(const ExecutablePlan &, const float *,
                                 const int32_t *, int64_t, int64_t,
                                 float *);

  private:
    /** Pick the specialized kernel entry for this plan's parameters. */
    void selectRunner();

    /** Shared run()/runResident() row-loop dispatch. */
    void dispatchRows(const float *rows, const int32_t *qrows,
                      int64_t num_rows, float *predictions) const;

    lir::ForestBuffers buffers_;
    mir::MirFunction mir_;
    std::vector<hir::TreeGroup> groups_;
    RangeRunner runner_ = nullptr;
    std::unique_ptr<ThreadPool> pool_;
    /** See defaultLeftWide(). */
    std::vector<int32_t> dlWide_;

    template <int NT, lir::LayoutKind L, int K, bool HM>
    friend struct PlanKernels;
};

} // namespace treebeard::runtime

#endif // TREEBEARD_RUNTIME_PLAN_H
