/**
 * @file
 * Treebeard's source-code backend: emit a specialized C++
 * predictForest translation unit from the LIR buffers and tree groups,
 * compile it with the system compiler and run the native code. This is
 * the repo's analogue of the original system's LLVM-IR emission + JIT:
 * the emitted source bakes in the schedule (loop order, tile size,
 * unroll depths, peel depths, interleave factor) and references the
 * model buffers through parameters, so one model compiles in seconds
 * regardless of size.
 */
#ifndef TREEBEARD_CODEGEN_CPP_EMITTER_H
#define TREEBEARD_CODEGEN_CPP_EMITTER_H

#include <memory>
#include <string>
#include <vector>

#include "codegen/system_jit.h"
#include "hir/hir_module.h"
#include "lir/forest_buffers.h"

namespace treebeard::codegen {

/**
 * Emit the specialized predictForest C++ source for @p buffers under
 * @p groups and @p schedule. The generated entry point is
 *
 *   extern "C" void treebeard_predict(
 *       const float* rows, int64_t num_rows, float* predictions,
 *       const float* thresholds, const int32_t* feature_indices,
 *       const int16_t* shape_ids, const uint8_t* default_left,
 *       const int32_t* child_base, const float* leaves,
 *       const int8_t* lut, const int64_t* tree_first_tile,
 *       const unsigned char* packed,
 *       const int32_t* default_left32);
 *
 * For the packed layout the SoA pointers (thresholds, feature_indices,
 * shape_ids, default_left, child_base) may be null; every tile field
 * is read from the packed records instead. default_left32 is an
 * int32-widened shadow of default_left consumed only by the
 * row-parallel sparse walkers (their default-direction gathers are
 * 4-byte words); null for every other configuration.
 *
 * Alongside the serial entry the TU carries the parallel row loop:
 *
 *   extern "C" void treebeard_predict_worker(
 *       int32_t worker, int32_t num_workers, <same parameters>);
 *
 * computes the row chunks assigned to @p worker (chunk size baked from
 * Schedule::rowChunkRows, default ceil(rows / workers)), so the
 * runtime fans out worker ids over its pool instead of partitioning
 * rows above the generated function. Quantized-packed plans
 * additionally export treebeard_predict_resident[_worker], which take
 * a pre-quantized const int32_t* row image in place of float rows and
 * perform no quantization at predict time (the Session's
 * resident-dataset path).
 *
 * Tile sizes 4 and 8 emit the kernel runtime's AVX2
 * gather/compare/movemask tile evaluation (guarded on __AVX2__, with
 * the scalar sequence as the fallback branch). Multiclass models
 * accumulate per-class margins via a baked tree->class table and
 * finish each row with the same softmax the kernel runtime applies;
 * predictions then receive num_rows * numClasses values.
 */
std::string emitPredictForestSource(
    const lir::ForestBuffers &buffers,
    const std::vector<hir::TreeGroup> &groups,
    const hir::Schedule &schedule);

/**
 * Append the vector-ISA flags (-mavx2) the emitted source can use on
 * this machine to @p options.extraFlags. Applied automatically by
 * JitCompiledSession; exposed for tests and custom JIT drivers.
 */
JitOptions withHostSimdFlags(JitOptions options);

/**
 * A model compiled through the source backend: owns the buffers and
 * the loaded shared object.
 */
class JitCompiledSession
{
  public:
    /**
     * Emit, compile and bind. The instance itself runs rows serially;
     * threading callers drive predictWorker() from their own pool
     * (one call per worker id), which executes the parallel row loop
     * emitted into the translation unit.
     */
    JitCompiledSession(lir::ForestBuffers buffers,
                       std::vector<hir::TreeGroup> groups,
                       const hir::Schedule &schedule,
                       const JitOptions &jit_options = {});

    /**
     * The generated predictForest: @p predictions receives
     * num_rows * numClasses() values (per-class probabilities for
     * multiclass models, one value per row otherwise).
     */
    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    /**
     * Run the emitted in-TU row loop's share for @p worker of
     * @p num_workers: every chunk congruent to the worker id. Calling
     * it for all worker ids (concurrently or not) computes exactly
     * the rows predict() computes, bit-identically.
     */
    void predictWorker(int32_t worker, int32_t num_workers,
                       const float *rows, int64_t num_rows,
                       float *predictions) const;

    /**
     * True when the plan exports the resident entry points (the
     * quantized packed layout): predictions straight from a
     * pre-quantized int32 row image, no quantization at predict time.
     */
    bool hasResidentEntry() const { return predictResident_ != nullptr; }

    /** Resident-image predict; requires hasResidentEntry(). */
    void predictResident(const int32_t *qrows, int64_t num_rows,
                         float *predictions) const;

    /** Resident-image share of the parallel row loop for one worker. */
    void predictResidentWorker(int32_t worker, int32_t num_workers,
                               const int32_t *qrows, int64_t num_rows,
                               float *predictions) const;

    int32_t numFeatures() const { return buffers_.numFeatures; }
    int32_t numClasses() const { return buffers_.numClasses; }
    const lir::ForestBuffers &buffers() const { return buffers_; }
    double compileSeconds() const { return module_->compileSeconds(); }
    const std::string &source() const { return source_; }

  private:
    using PredictFn = void (*)(const float *, int64_t, float *,
                               const float *, const int32_t *,
                               const int16_t *, const uint8_t *,
                               const int32_t *, const float *,
                               const int8_t *, const int64_t *,
                               const unsigned char *, const int32_t *);
    using PredictWorkerFn = void (*)(int32_t, int32_t, const float *,
                                     int64_t, float *, const float *,
                                     const int32_t *, const int16_t *,
                                     const uint8_t *, const int32_t *,
                                     const float *, const int8_t *,
                                     const int64_t *,
                                     const unsigned char *,
                                     const int32_t *);
    using PredictResidentFn = void (*)(const int32_t *, int64_t,
                                       float *, const float *,
                                       const int32_t *, const int16_t *,
                                       const uint8_t *, const int32_t *,
                                       const float *, const int8_t *,
                                       const int64_t *,
                                       const unsigned char *,
                                       const int32_t *);
    using PredictResidentWorkerFn =
        void (*)(int32_t, int32_t, const int32_t *, int64_t, float *,
                 const float *, const int32_t *, const int16_t *,
                 const uint8_t *, const int32_t *, const float *,
                 const int8_t *, const int64_t *,
                 const unsigned char *, const int32_t *);

    /** Layout-dependent nullable buffer pointers, per call. */
    struct BufferArgs
    {
        const int32_t *childBase;
        const float *leaves;
        const unsigned char *packed;
        const int32_t *defaultLeft32;
    };
    BufferArgs bufferArgs() const;

    lir::ForestBuffers buffers_;
    /**
     * Int32-widened shadow of buffers_.defaultLeft, built only for
     * row-parallel tile-size-1 sparse plans (word gathers from the
     * uint8 array would read past its end); empty otherwise.
     */
    std::vector<int32_t> dlWide_;
    std::string source_;
    std::unique_ptr<JitModule> module_;
    PredictFn predict_ = nullptr;
    PredictWorkerFn predictWorker_ = nullptr;
    PredictResidentFn predictResident_ = nullptr;
    PredictResidentWorkerFn predictResidentWorker_ = nullptr;
};

} // namespace treebeard::codegen

#endif // TREEBEARD_CODEGEN_CPP_EMITTER_H
