/**
 * @file
 * Treebeard's source-code backend: emit a specialized C++
 * predictForest translation unit from the LIR buffers and tree groups,
 * compile it with the system compiler and run the native code. This is
 * the repo's analogue of the original system's LLVM-IR emission + JIT:
 * the emitted source bakes in the schedule (loop order, tile size,
 * unroll depths, peel depths, interleave factor) and references the
 * model buffers through parameters, so one model compiles in seconds
 * regardless of size.
 */
#ifndef TREEBEARD_CODEGEN_CPP_EMITTER_H
#define TREEBEARD_CODEGEN_CPP_EMITTER_H

#include <memory>
#include <string>
#include <vector>

#include "codegen/system_jit.h"
#include "hir/hir_module.h"
#include "lir/forest_buffers.h"

namespace treebeard::codegen {

/**
 * Emit the specialized predictForest C++ source for @p buffers under
 * @p groups and @p schedule. The generated entry point is
 *
 *   extern "C" void treebeard_predict(
 *       const float* rows, int64_t num_rows, float* predictions,
 *       const float* thresholds, const int32_t* feature_indices,
 *       const int16_t* shape_ids, const uint8_t* default_left,
 *       const int32_t* child_base, const float* leaves,
 *       const int8_t* lut, const int64_t* tree_first_tile,
 *       const unsigned char* packed);
 *
 * For the packed layout the SoA pointers (thresholds, feature_indices,
 * shape_ids, default_left, child_base) may be null; every tile field
 * is read from the packed records instead.
 *
 * Tile sizes 4 and 8 emit the kernel runtime's AVX2
 * gather/compare/movemask tile evaluation (guarded on __AVX2__, with
 * the scalar sequence as the fallback branch). Multiclass models
 * accumulate per-class margins via a baked tree->class table and
 * finish each row with the same softmax the kernel runtime applies;
 * predictions then receive num_rows * numClasses values.
 */
std::string emitPredictForestSource(
    const lir::ForestBuffers &buffers,
    const std::vector<hir::TreeGroup> &groups,
    const hir::Schedule &schedule);

/**
 * Append the vector-ISA flags (-mavx2) the emitted source can use on
 * this machine to @p options.extraFlags. Applied automatically by
 * JitCompiledSession; exposed for tests and custom JIT drivers.
 */
JitOptions withHostSimdFlags(JitOptions options);

/**
 * A model compiled through the source backend: owns the buffers and
 * the loaded shared object.
 */
class JitCompiledSession
{
  public:
    /**
     * Emit, compile and bind. Serial execution only (the paper's
     * parallel loop lives above the generated function; use the
     * kernel runtime for threading).
     */
    JitCompiledSession(lir::ForestBuffers buffers,
                       std::vector<hir::TreeGroup> groups,
                       const hir::Schedule &schedule,
                       const JitOptions &jit_options = {});

    /**
     * The generated predictForest: @p predictions receives
     * num_rows * numClasses() values (per-class probabilities for
     * multiclass models, one value per row otherwise).
     */
    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    int32_t numFeatures() const { return buffers_.numFeatures; }
    int32_t numClasses() const { return buffers_.numClasses; }
    const lir::ForestBuffers &buffers() const { return buffers_; }
    double compileSeconds() const { return module_->compileSeconds(); }
    const std::string &source() const { return source_; }

  private:
    using PredictFn = void (*)(const float *, int64_t, float *,
                               const float *, const int32_t *,
                               const int16_t *, const uint8_t *,
                               const int32_t *, const float *,
                               const int8_t *, const int64_t *,
                               const unsigned char *);

    lir::ForestBuffers buffers_;
    std::string source_;
    std::unique_ptr<JitModule> module_;
    PredictFn predict_ = nullptr;
};

} // namespace treebeard::codegen

#endif // TREEBEARD_CODEGEN_CPP_EMITTER_H
