/**
 * @file
 * Treebeard's source-code backend: emit a specialized C++
 * predictForest translation unit from the LIR buffers and tree groups,
 * compile it with the system compiler and run the native code. This is
 * the repo's analogue of the original system's LLVM-IR emission + JIT:
 * the emitted source bakes in the schedule (loop order, tile size,
 * unroll depths, peel depths, interleave factor) and references the
 * model buffers through parameters, so one model compiles in seconds
 * regardless of size.
 */
#ifndef TREEBEARD_CODEGEN_CPP_EMITTER_H
#define TREEBEARD_CODEGEN_CPP_EMITTER_H

#include <memory>
#include <string>
#include <vector>

#include "codegen/system_jit.h"
#include "hir/hir_module.h"
#include "lir/forest_buffers.h"

namespace treebeard::codegen {

/**
 * Emit the specialized predictForest C++ source for @p buffers under
 * @p groups and @p schedule. The generated entry point is
 *
 *   extern "C" void treebeard_predict(
 *       const float* rows, int64_t num_rows, float* predictions,
 *       const float* thresholds, const int32_t* feature_indices,
 *       const int16_t* shape_ids, const uint8_t* default_left,
 *       const int32_t* child_base, const float* leaves,
 *       const int8_t* lut, const int64_t* tree_first_tile,
 *       const unsigned char* packed);
 *
 * For the packed layout the SoA pointers (thresholds, feature_indices,
 * shape_ids, default_left, child_base) may be null; every tile field
 * is read from the packed records instead.
 */
std::string emitPredictForestSource(
    const lir::ForestBuffers &buffers,
    const std::vector<hir::TreeGroup> &groups,
    const hir::Schedule &schedule);

/**
 * A model compiled through the source backend: owns the buffers and
 * the loaded shared object.
 */
class JitCompiledSession
{
  public:
    /**
     * Emit, compile and bind. Serial execution only (the paper's
     * parallel loop lives above the generated function; use the
     * kernel runtime for threading).
     */
    JitCompiledSession(lir::ForestBuffers buffers,
                       std::vector<hir::TreeGroup> groups,
                       const hir::Schedule &schedule,
                       const JitOptions &jit_options = {});

    void predict(const float *rows, int64_t num_rows,
                 float *predictions) const;

    double compileSeconds() const { return module_->compileSeconds(); }
    const std::string &source() const { return source_; }

  private:
    using PredictFn = void (*)(const float *, int64_t, float *,
                               const float *, const int32_t *,
                               const int16_t *, const uint8_t *,
                               const int32_t *, const float *,
                               const int8_t *, const int64_t *,
                               const unsigned char *);

    lir::ForestBuffers buffers_;
    std::string source_;
    std::unique_ptr<JitModule> module_;
    PredictFn predict_ = nullptr;
};

} // namespace treebeard::codegen

#endif // TREEBEARD_CODEGEN_CPP_EMITTER_H
