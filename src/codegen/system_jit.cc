#include "codegen/system_jit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include <dlfcn.h>
#include <unistd.h>

#include "common/json.h"
#include "common/logging.h"
#include "common/timer.h"

namespace treebeard::codegen {

namespace {

namespace fs = std::filesystem;

/** Create a unique scratch directory under the system temp dir. */
std::string
makeWorkDir()
{
    static std::atomic<uint64_t> counter{0};
    fs::path base = fs::temp_directory_path();
    fs::path dir = base / ("treebeard-jit-" + std::to_string(getpid()) +
                           "-" + std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec), "cannot create JIT work directory '",
            dir.string(), "': ", ec.message());
    return dir.string();
}

/** Run @p command, capturing combined output; returns exit status. */
int
runCommand(const std::string &command, std::string &output)
{
    std::string wrapped = command + " 2>&1";
    FILE *pipe = popen(wrapped.c_str(), "r");
    fatalIf(pipe == nullptr, "cannot spawn compiler process");
    char buffer[4096];
    output.clear();
    while (size_t n = fread(buffer, 1, sizeof(buffer), pipe))
        output.append(buffer, n);
    return pclose(pipe);
}

} // namespace

JitModule::JitModule(const std::string &source, const JitOptions &options)
    : keepArtifacts_(options.keepArtifacts)
{
    workDir_ = makeWorkDir();
    std::string source_path = workDir_ + "/generated.cpp";
    libraryPath_ = workDir_ + "/generated.so";
    writeStringToFile(source_path, source);

    std::string command = options.compiler + " " + options.optLevel +
                          " -shared -fPIC -std=c++17 " +
                          options.extraFlags + " -o " + libraryPath_ +
                          " " + source_path;
    Timer timer;
    std::string compiler_output;
    int status = runCommand(command, compiler_output);
    compileSeconds_ = timer.elapsedSeconds();
    if (status != 0) {
        std::string message = "JIT compilation failed (status " +
                              std::to_string(status) +
                              "):\n" + compiler_output;
        if (!keepArtifacts_) {
            std::error_code ec;
            std::filesystem::remove_all(workDir_, ec);
        }
        fatal(message);
    }

    handle_ = dlopen(libraryPath_.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle_ == nullptr) {
        std::string message =
            std::string("dlopen failed: ") + dlerror();
        if (!keepArtifacts_) {
            std::error_code ec;
            std::filesystem::remove_all(workDir_, ec);
        }
        fatal(message);
    }
}

JitModule::JitModule(JitModule &&other) noexcept
    : handle_(other.handle_), workDir_(std::move(other.workDir_)),
      libraryPath_(std::move(other.libraryPath_)),
      compileSeconds_(other.compileSeconds_),
      keepArtifacts_(other.keepArtifacts_)
{
    other.handle_ = nullptr;
    other.workDir_.clear();
}

JitModule &
JitModule::operator=(JitModule &&other) noexcept
{
    if (this != &other) {
        unload();
        handle_ = other.handle_;
        workDir_ = std::move(other.workDir_);
        libraryPath_ = std::move(other.libraryPath_);
        compileSeconds_ = other.compileSeconds_;
        keepArtifacts_ = other.keepArtifacts_;
        other.handle_ = nullptr;
        other.workDir_.clear();
    }
    return *this;
}

JitModule::~JitModule()
{
    unload();
}

void
JitModule::unload()
{
    if (handle_ != nullptr) {
        dlclose(handle_);
        handle_ = nullptr;
    }
    if (!workDir_.empty() && !keepArtifacts_) {
        std::error_code ec;
        std::filesystem::remove_all(workDir_, ec);
    }
    workDir_.clear();
}

void *
JitModule::symbol(const std::string &name) const
{
    panicIf(handle_ == nullptr, "symbol lookup on unloaded module");
    void *address = dlsym(handle_, name.c_str());
    fatalIf(address == nullptr, "JIT module has no symbol '", name, "'");
    return address;
}

bool
systemCompilerAvailable(const JitOptions &options)
{
    std::string output;
    return runCommand(options.compiler + " --version", output) == 0;
}

} // namespace treebeard::codegen
