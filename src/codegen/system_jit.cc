#include "codegen/system_jit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <unordered_map>

#include <dlfcn.h>
#include <unistd.h>

#include "common/json.h"
#include "common/logging.h"
#include "common/timer.h"

namespace treebeard::codegen {

namespace {

namespace fs = std::filesystem;

/** Create a unique scratch directory under the system temp dir. */
std::string
makeWorkDir()
{
    static std::atomic<uint64_t> counter{0};
    fs::path base = fs::temp_directory_path();
    fs::path dir = base / ("treebeard-jit-" + std::to_string(getpid()) +
                           "-" + std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec), "cannot create JIT work directory '",
            dir.string(), "': ", ec.message());
    return dir.string();
}

/** Run @p command, capturing combined output; returns exit status. */
int
runCommand(const std::string &command, std::string &output)
{
    std::string wrapped = command + " 2>&1";
    FILE *pipe = popen(wrapped.c_str(), "r");
    fatalIf(pipe == nullptr, "cannot spawn compiler process");
    char buffer[4096];
    output.clear();
    while (size_t n = fread(buffer, 1, sizeof(buffer), pipe))
        output.append(buffer, n);
    return pclose(pipe);
}

} // namespace

/** The compiled-and-dlopen'd shared object, shared between modules. */
struct JitModule::LoadedLibrary
{
    void *handle = nullptr;
    std::string workDir;
    std::string libraryPath;
    double compileSeconds = 0.0;
    bool keepArtifacts = false;

    LoadedLibrary() = default;
    LoadedLibrary(const LoadedLibrary &) = delete;
    LoadedLibrary &operator=(const LoadedLibrary &) = delete;

    ~LoadedLibrary()
    {
        if (handle != nullptr)
            dlclose(handle);
        if (!workDir.empty() && !keepArtifacts) {
            std::error_code ec;
            fs::remove_all(workDir, ec);
        }
    }
};

namespace {

/**
 * Process-wide compilation cache: key -> loaded library. Entries hold
 * strong references so a library compiled once stays resident (and
 * its symbols valid) for the rest of the process; everything unloads
 * at static destruction.
 */
struct JitCache
{
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<JitModule::LoadedLibrary>>
        entries;
    JitCacheStats stats;
};

JitCache &
jitCache()
{
    static JitCache cache;
    return cache;
}

std::shared_ptr<JitModule::LoadedLibrary>
compileAndLoad(const std::string &source, const JitOptions &options)
{
    auto library = std::make_shared<JitModule::LoadedLibrary>();
    library->keepArtifacts = options.keepArtifacts;
    library->workDir = makeWorkDir();
    std::string source_path = library->workDir + "/generated.cpp";
    library->libraryPath = library->workDir + "/generated.so";
    writeStringToFile(source_path, source);

    std::string command = options.compiler + " " + options.optLevel +
                          " -shared -fPIC -std=c++17 " +
                          options.extraFlags + " -o " +
                          library->libraryPath + " " + source_path;
    Timer timer;
    std::string compiler_output;
    int status = runCommand(command, compiler_output);
    library->compileSeconds = timer.elapsedSeconds();
    if (status != 0) {
        fatal("JIT compilation failed (status ", status, "):\n",
              compiler_output);
    }

    library->handle =
        dlopen(library->libraryPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (library->handle == nullptr)
        fatal("dlopen failed: ", dlerror());
    return library;
}

} // namespace

JitModule::JitModule(const std::string &source, const JitOptions &options)
{
    if (options.keepArtifacts) {
        // Debugging path: private artifacts, no sharing.
        library_ = compileAndLoad(source, options);
        compileSeconds_ = library_->compileSeconds;
        return;
    }

    std::string key = options.compiler + '\x1f' + options.optLevel +
                      '\x1f' + options.extraFlags + '\x1f' + source;
    JitCache &cache = jitCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        cache.stats.lookups += 1;
        auto it = cache.entries.find(key);
        if (it != cache.entries.end()) {
            cache.stats.hits += 1;
            library_ = it->second;
            compileSeconds_ = 0.0;
            return;
        }
    }

    // Compile outside the lock; concurrent misses on the same key race
    // benignly (first insert wins, the loser's library unloads).
    auto library = compileAndLoad(source, options);
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto [it, inserted] = cache.entries.emplace(key, library);
        library_ = it->second;
    }
    compileSeconds_ = library_->compileSeconds;
}

JitModule::~JitModule() = default;

void *
JitModule::symbol(const std::string &name) const
{
    panicIf(library_ == nullptr || library_->handle == nullptr,
            "symbol lookup on unloaded module");
    void *address = dlsym(library_->handle, name.c_str());
    fatalIf(address == nullptr, "JIT module has no symbol '", name, "'");
    return address;
}

const std::string &
JitModule::libraryPath() const
{
    panicIf(library_ == nullptr, "libraryPath on unloaded module");
    return library_->libraryPath;
}

JitCacheStats
jitCacheStats()
{
    JitCache &cache = jitCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.stats;
}

bool
systemCompilerAvailable(const JitOptions &options)
{
    std::string output;
    return runCommand(options.compiler + " --version", output) == 0;
}

} // namespace treebeard::codegen
