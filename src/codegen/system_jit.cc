#include "codegen/system_jit.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <unordered_map>
#include <utility>
#include <vector>

#include <dlfcn.h>
#include <unistd.h>

#include "common/checked_mutex.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace treebeard::codegen {

namespace {

namespace fs = std::filesystem;

/** Create a unique scratch directory under the system temp dir. */
std::string
makeWorkDir()
{
    static std::atomic<uint64_t> counter{0};
    fs::path base = fs::temp_directory_path();
    fs::path dir = base / ("treebeard-jit-" + std::to_string(getpid()) +
                           "-" + std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec), "cannot create JIT work directory '",
            dir.string(), "': ", ec.message());
    return dir.string();
}

/** Run @p command, capturing combined output; returns exit status. */
int
runCommand(const std::string &command, std::string &output)
{
    std::string wrapped = command + " 2>&1";
    FILE *pipe = popen(wrapped.c_str(), "r");
    fatalIf(pipe == nullptr, "cannot spawn compiler process");
    char buffer[4096];
    output.clear();
    while (size_t n = fread(buffer, 1, sizeof(buffer), pipe))
        output.append(buffer, n);
    return pclose(pipe);
}

/** FNV-1a 64-bit content hash for disk-cache entry names. */
uint64_t
fnv1aHash(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Disk-cache entry path for a cache key (hex content hash). */
std::string
diskCacheEntryPath(const std::string &cache_dir, const std::string &key)
{
    char name[32];
    std::snprintf(name, sizeof(name), "treebeard-%016llx.so",
                  static_cast<unsigned long long>(fnv1aHash(key)));
    return (fs::path(cache_dir) / name).string();
}

/**
 * Publish @p so_path into the disk cache atomically (copy to a
 * pid-suffixed temp name, then rename over the entry) so concurrent
 * processes never observe a half-written .so. Returns false (with a
 * warning) on filesystem errors — the cache is best-effort.
 */
bool
storeInDiskCache(const std::string &so_path, const std::string &entry)
{
    std::error_code ec;
    fs::path temp = entry + ".tmp-" + std::to_string(getpid());
    fs::copy_file(so_path, temp, fs::copy_options::overwrite_existing,
                  ec);
    if (ec) {
        warn("JIT disk cache: cannot stage '", temp.string(),
             "': ", ec.message());
        return false;
    }
    fs::rename(temp, entry, ec);
    if (ec) {
        warn("JIT disk cache: cannot publish '", entry,
             "': ", ec.message());
        fs::remove(temp, ec);
        return false;
    }
    return true;
}

/** True for names the disk cache owns (treebeard-<hash>.so). */
bool
isDiskCacheEntryName(const std::string &name)
{
    return name.size() > 13 && name.compare(0, 10, "treebeard-") == 0 &&
           name.compare(name.size() - 3, 3, ".so") == 0;
}

/**
 * Enforce @p cap on the cache directory after a store: remove
 * least-recently-used entries (oldest mtime first, never
 * @p just_stored) until the summed entry sizes fit. Best-effort —
 * filesystem errors skip the entry rather than fail the compile.
 * Returns the number of entries evicted.
 */
int64_t
evictDiskCacheOverCap(const std::string &cache_dir, int64_t cap,
                      const std::string &just_stored)
{
    if (cap <= 0)
        return 0;
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        int64_t bytes = 0;
    };
    std::vector<Entry> entries;
    int64_t total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(cache_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!isDiskCacheEntryName(it->path().filename().string()))
            continue;
        std::error_code attr_ec;
        Entry entry;
        entry.path = it->path();
        entry.bytes =
            static_cast<int64_t>(fs::file_size(entry.path, attr_ec));
        if (attr_ec)
            continue;
        entry.mtime = fs::last_write_time(entry.path, attr_ec);
        if (attr_ec)
            continue;
        total += entry.bytes;
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    fs::path keep(just_stored);
    int64_t evicted = 0;
    for (const Entry &entry : entries) {
        if (total <= cap)
            break;
        if (entry.path == keep)
            continue;
        std::error_code remove_ec;
        if (fs::remove(entry.path, remove_ec) && !remove_ec) {
            total -= entry.bytes;
            evicted += 1;
        }
    }
    return evicted;
}

} // namespace

/** The compiled-and-dlopen'd shared object, shared between modules. */
struct JitModule::LoadedLibrary
{
    void *handle = nullptr;
    std::string workDir;
    std::string libraryPath;
    double compileSeconds = 0.0;
    bool keepArtifacts = false;

    LoadedLibrary() = default;
    LoadedLibrary(const LoadedLibrary &) = delete;
    LoadedLibrary &operator=(const LoadedLibrary &) = delete;

    ~LoadedLibrary()
    {
        if (handle != nullptr)
            dlclose(handle);
        if (!workDir.empty() && !keepArtifacts) {
            std::error_code ec;
            fs::remove_all(workDir, ec);
        }
    }
};

namespace {

/**
 * Process-wide compilation cache: key -> loaded library. Entries hold
 * strong references so a library compiled once stays resident (and
 * its symbols valid) for the rest of the process; everything unloads
 * at static destruction.
 */
struct JitCache
{
    /**
     * A leaf in the acquisition order: compilation and dlopen/dlclose
     * run strictly outside it (the dynamic loader has internal locks
     * of its own that must never nest inside ours).
     */
    Mutex mutex{"codegen.JitCache.mutex"};
    std::unordered_map<std::string,
                       std::shared_ptr<JitModule::LoadedLibrary>>
        entries GUARDED_BY(mutex);
    JitCacheStats stats GUARDED_BY(mutex);
};

JitCache &
jitCache()
{
    static JitCache cache;
    return cache;
}

std::shared_ptr<JitModule::LoadedLibrary>
compileAndLoad(const std::string &source, const JitOptions &options)
{
    auto library = std::make_shared<JitModule::LoadedLibrary>();
    library->keepArtifacts = options.keepArtifacts;
    library->workDir = makeWorkDir();
    std::string source_path = library->workDir + "/generated.cpp";
    library->libraryPath = library->workDir + "/generated.so";
    writeStringToFile(source_path, source);

    std::string command = options.compiler + " " + options.optLevel +
                          " -shared -fPIC -std=c++17 " +
                          options.extraFlags + " -o " +
                          library->libraryPath + " " + source_path;
    Timer timer;
    std::string compiler_output;
    int status = runCommand(command, compiler_output);
    library->compileSeconds = timer.elapsedSeconds();
    if (status != 0) {
        fatal("JIT compilation failed (status ", status, "):\n",
              compiler_output);
    }

    library->handle =
        dlopen(library->libraryPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (library->handle == nullptr) {
        // glibc's dlerror() uses thread-local state, so reading the
        // error for a dlopen on this same thread is race-free.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        fatal("dlopen failed: ", dlerror());
    }
    return library;
}

} // namespace

JitModule::JitModule(const std::string &source, const JitOptions &options)
{
    if (options.keepArtifacts) {
        // Debugging path: private artifacts, no sharing.
        library_ = compileAndLoad(source, options);
        compileSeconds_ = library_->compileSeconds;
        return;
    }

    std::string key = options.compiler + '\x1f' + options.optLevel +
                      '\x1f' + options.extraFlags + '\x1f' + source;
    JitCache &cache = jitCache();
    {
        MutexLock lock(cache.mutex);
        cache.stats.lookups += 1;
        auto it = cache.entries.find(key);
        if (it != cache.entries.end()) {
            cache.stats.hits += 1;
            library_ = it->second;
            compileSeconds_ = 0.0;
            return;
        }
    }

    // Memory miss: try the on-disk cache before invoking the compiler.
    std::string disk_entry;
    if (!options.cacheDir.empty()) {
        std::error_code ec;
        fs::create_directories(options.cacheDir, ec);
        fatalIf(static_cast<bool>(ec),
                "cannot create JIT cache directory '", options.cacheDir,
                "': ", ec.message());
        disk_entry = diskCacheEntryPath(options.cacheDir, key);
        {
            MutexLock lock(cache.mutex);
            cache.stats.diskLookups += 1;
        }
        std::error_code exists_ec;
        if (fs::exists(disk_entry, exists_ec)) {
            void *handle =
                dlopen(disk_entry.c_str(), RTLD_NOW | RTLD_LOCAL);
            if (handle != nullptr) {
                auto library =
                    std::make_shared<JitModule::LoadedLibrary>();
                library->handle = handle;
                library->libraryPath = disk_entry;
                // LRU bookkeeping: a hit refreshes the entry's mtime
                // so the size cap evicts cold entries first.
                std::error_code touch_ec;
                fs::last_write_time(disk_entry,
                                    fs::file_time_type::clock::now(),
                                    touch_ec);
                // No workDir: the entry belongs to the cache and must
                // outlive this process.
                MutexLock lock(cache.mutex);
                cache.stats.diskHits += 1;
                auto [it, inserted] = cache.entries.emplace(key, library);
                library_ = it->second;
                compileSeconds_ = 0.0;
                return;
            }
            // Corrupt/truncated/incompatible entry: recompile below
            // and overwrite it. dlerror() is thread-local in glibc,
            // so this reports our own dlopen's failure.
            // NOLINTNEXTLINE(concurrency-mt-unsafe)
            warn("JIT disk cache: cannot load '", disk_entry,
                 "' (", dlerror(), "); recompiling");
        }
    }

    // Compile outside the lock; concurrent misses on the same key race
    // benignly (first insert wins, the loser's library unloads).
    auto library = compileAndLoad(source, options);
    bool stored = !disk_entry.empty() &&
                  storeInDiskCache(library->libraryPath, disk_entry);
    int64_t evictions =
        stored ? evictDiskCacheOverCap(options.cacheDir,
                                       options.cacheMaxBytes, disk_entry)
               : 0;
    {
        MutexLock lock(cache.mutex);
        if (stored)
            cache.stats.diskStores += 1;
        cache.stats.diskEvictions += evictions;
        auto [it, inserted] = cache.entries.emplace(key, library);
        library_ = it->second;
    }
    compileSeconds_ = library_->compileSeconds;
}

JitModule::~JitModule() = default;

void *
JitModule::symbol(const std::string &name) const
{
    panicIf(library_ == nullptr || library_->handle == nullptr,
            "symbol lookup on unloaded module");
    void *address = dlsym(library_->handle, name.c_str());
    fatalIf(address == nullptr, "JIT module has no symbol '", name, "'");
    return address;
}

void *
JitModule::symbolOrNull(const std::string &name) const
{
    panicIf(library_ == nullptr || library_->handle == nullptr,
            "symbol lookup on unloaded module");
    return dlsym(library_->handle, name.c_str());
}

const std::string &
JitModule::libraryPath() const
{
    panicIf(library_ == nullptr, "libraryPath on unloaded module");
    return library_->libraryPath;
}

JitCacheStats
jitCacheStats()
{
    JitCache &cache = jitCache();
    MutexLock lock(cache.mutex);
    return cache.stats;
}

void
clearJitMemoryCacheForTesting()
{
    JitCache &cache = jitCache();
    std::unordered_map<std::string,
                       std::shared_ptr<JitModule::LoadedLibrary>>
        dropped;
    {
        MutexLock lock(cache.mutex);
        dropped.swap(cache.entries);
    }
    // `dropped` destructs here, after the unlock: releasing the last
    // reference dlclose()s the library, and the dynamic loader's
    // internal locks must not nest inside the cache mutex.
}

bool
systemCompilerAvailable(const JitOptions &options)
{
    std::string output;
    return runCommand(options.compiler + " --version", output) == 0;
}

} // namespace treebeard::codegen
