#include "codegen/cpp_emitter.h"

#include <sstream>

#include "common/logging.h"

namespace treebeard::codegen {

namespace {

using hir::TreeGroup;
using lir::ForestBuffers;
using lir::LayoutKind;

/** Format a valid C++ float literal that round-trips exactly. */
std::string
floatLiteral(float value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    std::string text(buffer);
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos) {
        text += ".0";
    }
    return text + "f";
}

/**
 * Emit the scalar slot-by-slot outcome computation. Expects locals
 * `th` (thresholds), `fi` (feature indices) and `dl` (default-left
 * bits) in scope; defines `outcome`.
 */
void
emitScalarOutcome(std::ostringstream &os, int32_t nt)
{
    os << "  unsigned outcome = 0;\n";
    for (int32_t s = 0; s < nt; ++s) {
        // NaN (v != v) routes per the tile's default-direction bits.
        os << "  { float v = row[fi[" << s << "]]; outcome |= "
           << "(unsigned)(v < th[" << s << "] || (v != v && ((dl >> "
           << s << ") & 1u))) << " << s << "; }\n";
    }
}

/**
 * Emit the AVX2 gather/compare/movemask outcome computation — the
 * same instruction sequence the kernel runtime's evalTile uses — for
 * tile sizes 4 and 8, guarded so the translation unit still compiles
 * without -mavx2 (the scalar path then follows in the #else branch).
 * @p features16 widens int16 feature indices (the packed layout's
 * record field) before the gather. Returns false for tile sizes with
 * no vector sequence; the caller then emits the scalar path alone.
 */
bool
emitAvx2Outcome(std::ostringstream &os, int32_t nt, bool features16)
{
    if (nt != 4 && nt != 8)
        return false;
    os << "#if defined(__AVX2__)\n";
    if (nt == 8) {
        os << "  __m256 thv = _mm256_loadu_ps(th);\n";
        if (features16) {
            os << "  __m256i fiv = _mm256_cvtepi16_epi32("
                  "_mm_loadu_si128((const __m128i*)fi));\n";
        } else {
            os << "  __m256i fiv = "
                  "_mm256_loadu_si256((const __m256i*)fi);\n";
        }
        os << "  __m256 fv = _mm256_i32gather_ps(row, fiv, 4);\n";
        os << "  unsigned outcome = (unsigned)_mm256_movemask_ps("
              "_mm256_cmp_ps(fv, thv, _CMP_LT_OQ));\n";
        // Missing (NaN) lanes compare false above; route them per the
        // tile's default-direction bits instead.
        os << "  outcome |= (unsigned)_mm256_movemask_ps("
              "_mm256_cmp_ps(fv, fv, _CMP_UNORD_Q)) & dl;\n";
    } else {
        os << "  __m128 thv = _mm_loadu_ps(th);\n";
        if (features16) {
            os << "  __m128i fiv = _mm_cvtepi16_epi32("
                  "_mm_loadl_epi64((const __m128i*)fi));\n";
        } else {
            os << "  __m128i fiv = "
                  "_mm_loadu_si128((const __m128i*)fi);\n";
        }
        os << "  __m128 fv = _mm_i32gather_ps(row, fiv, 4);\n";
        os << "  unsigned outcome = (unsigned)_mm_movemask_ps("
              "_mm_cmplt_ps(fv, thv));\n";
        os << "  outcome |= (unsigned)_mm_movemask_ps("
              "_mm_cmpunord_ps(fv, fv)) & dl;\n";
    }
    os << "#else\n";
    return true;
}

/** Emit the vector-or-scalar outcome computation for the tile size. */
void
emitOutcome(std::ostringstream &os, int32_t nt, bool features16)
{
    if (emitAvx2Outcome(os, nt, features16)) {
        emitScalarOutcome(os, nt);
        os << "#endif\n";
    } else {
        emitScalarOutcome(os, nt);
    }
}

/**
 * Emit the scalar outcome computation for the quantized packed record:
 * an int16 compare per slot, with the kQuantizedNaN sentinel routed by
 * the default-direction bits. Expects locals `th` (int16 thresholds),
 * `fi` (uint8 feature indices) and `dl` in scope.
 */
void
emitQuantizedScalarOutcome(std::ostringstream &os, int32_t nt)
{
    os << "  unsigned outcome = 0;\n";
    for (int32_t s = 0; s < nt; ++s) {
        os << "  { int32_t v = qrow[fi[" << s << "]]; outcome |= "
           << "(unsigned)(v < (int32_t)th[" << s << "] || (v == "
           << lir::kQuantizedNaN << " && ((dl >> " << s
           << ") & 1u))) << " << s << "; }\n";
    }
}

/**
 * Emit the AVX2 int16 compare for the quantized packed record — the
 * same instruction sequence the kernel runtime's evalTilePackedQuantized
 * uses. All operations are exact integer ops, so kernel and generated
 * code agree bit-for-bit. Returns false for tile sizes with no vector
 * sequence.
 */
bool
emitQuantizedAvx2Outcome(std::ostringstream &os, int32_t nt)
{
    if (nt != 4 && nt != 8)
        return false;
    os << "#if defined(__AVX2__)\n";
    if (nt == 8) {
        // Sign-extend thresholds to int32 (off the gather's critical
        // path) and compare in epi32 — outcome-identical to an int16
        // compare since both sides are in int16 range.
        os << "  __m256i thv = _mm256_cvtepi16_epi32("
              "_mm_loadu_si128((const __m128i*)th));\n";
        os << "  __m256i fiv = _mm256_cvtepu8_epi32("
              "_mm_loadl_epi64((const __m128i*)fi));\n";
        os << "  __m256i qv = _mm256_i32gather_epi32(qrow, fiv, 4);\n";
        os << "  __m256i ltv = _mm256_cmpgt_epi32(thv, qv);\n";
        os << "  unsigned outcome = (unsigned)_mm256_movemask_ps("
              "_mm256_castsi256_ps(ltv));\n";
        os << "  __m256i missv = _mm256_cmpeq_epi32(qv, "
              "_mm256_set1_epi32("
           << lir::kQuantizedNaN << "));\n";
        os << "  outcome |= (unsigned)_mm256_movemask_ps("
              "_mm256_castsi256_ps(missv)) & dl;\n";
    } else {
        os << "  __m128i thv = _mm_cvtepi16_epi32("
              "_mm_loadl_epi64((const __m128i*)th));\n";
        os << "  uint32_t fib; __builtin_memcpy(&fib, fi, 4);\n";
        os << "  __m128i fiv = _mm_cvtepu8_epi32("
              "_mm_cvtsi32_si128((int32_t)fib));\n";
        os << "  __m128i qv = _mm_i32gather_epi32(qrow, fiv, 4);\n";
        os << "  __m128i ltv = _mm_cmpgt_epi32(thv, qv);\n";
        os << "  unsigned outcome = (unsigned)_mm_movemask_ps("
              "_mm_castsi128_ps(ltv));\n";
        os << "  __m128i missv = _mm_cmpeq_epi32(qv, _mm_set1_epi32("
           << lir::kQuantizedNaN << "));\n";
        os << "  outcome |= (unsigned)_mm_movemask_ps("
              "_mm_castsi128_ps(missv)) & dl;\n";
    }
    os << "#else\n";
    return true;
}

/** Emit the quantized vector-or-scalar outcome computation. */
void
emitQuantizedOutcome(std::ostringstream &os, int32_t nt)
{
    if (emitQuantizedAvx2Outcome(os, nt)) {
        emitQuantizedScalarOutcome(os, nt);
        os << "#endif\n";
    } else {
        emitQuantizedScalarOutcome(os, nt);
    }
}

/** Emit the tile-evaluation helper specialized for the tile size. */
void
emitEvalTile(std::ostringstream &os, const ForestBuffers &fb)
{
    int32_t nt = fb.tileSize;
    if (fb.layout == LayoutKind::kPackedQuantized) {
        // One 32-byte (tile-8) record per tile; the row has been
        // pre-quantized into one int32 per feature.
        os << "static inline int evalTile(const unsigned char* rec, "
              "const int32_t* qrow, const int8_t* lut) {\n";
        os << "  const int16_t* th = (const int16_t*)rec;\n";
        os << "  const uint8_t* fi = rec + "
           << lir::packedqFeaturesOffset(nt) << ";\n";
        os << "  int16_t shape; __builtin_memcpy(&shape, rec + "
           << lir::packedqShapeOffset(nt) << ", 2);\n";
        os << "  unsigned dl = rec["
           << lir::packedqDefaultLeftOffset(nt) << "];\n";
        emitQuantizedOutcome(os, nt);
        os << "  return lut[(size_t)shape * "
           << fb.shapes->lutStride() << " + outcome];\n";
        os << "}\n\n";
        os << "static inline int32_t childBase(const unsigned char* "
              "rec) {\n"
              "  int32_t b; __builtin_memcpy(&b, rec + "
           << lir::packedqChildBaseOffset(nt) << ", 4); return b;\n"
              "}\n\n";
        return;
    }
    if (fb.layout == LayoutKind::kPacked) {
        // One fixed-stride record per tile; offsets are baked in.
        os << "static inline int evalTile(const unsigned char* rec, "
              "const float* row, const int8_t* lut) {\n";
        os << "  const float* th = (const float*)rec;\n";
        os << "  const int16_t* fi = (const int16_t*)(rec + "
           << lir::packedFeaturesOffset(nt) << ");\n";
        os << "  int16_t shape; __builtin_memcpy(&shape, rec + "
           << lir::packedShapeOffset(nt) << ", 2);\n";
        os << "  unsigned dl = rec["
           << lir::packedDefaultLeftOffset(nt) << "];\n";
        emitOutcome(os, nt, /*features16=*/true);
        os << "  return lut[(size_t)shape * "
           << fb.shapes->lutStride() << " + outcome];\n";
        os << "}\n\n";
        os << "static inline int32_t childBase(const unsigned char* "
              "rec) {\n"
              "  int32_t b; __builtin_memcpy(&b, rec + "
           << lir::packedChildBaseOffset(nt) << ", 4); return b;\n"
              "}\n\n";
        return;
    }
    os << "static inline int evalTile(int64_t tile, const float* row,\n"
          "    const float* thresholds, const int32_t* features,\n"
          "    const int16_t* shape_ids, const uint8_t* default_left,\n"
          "    const int8_t* lut) {\n";
    os << "  const float* th = thresholds + tile * " << nt << ";\n";
    os << "  const int32_t* fi = features + tile * " << nt << ";\n";
    os << "  unsigned dl = default_left[tile];\n";
    emitOutcome(os, nt, /*features16=*/false);
    os << "  return lut[(size_t)shape_ids[tile] * " << fb.shapes->lutStride()
       << " + outcome];\n";
    os << "}\n\n";
}

/** Emit a single walk returning the leaf value; specialized per group. */
void
emitWalkFunction(std::ostringstream &os, const ForestBuffers &fb,
                 const TreeGroup &group, size_t group_index)
{
    bool sparse = fb.layout == LayoutKind::kSparse;
    int32_t nt = fb.tileSize;
    if (lir::isPackedKind(fb.layout)) {
        bool quantized = fb.layout == LayoutKind::kPackedQuantized;
        int32_t stride = quantized ? lir::packedqTileStride(nt)
                                   : lir::packedTileStride(nt);
        os << "static inline float walk_group_" << group_index
           << "(int64_t root, "
           << (quantized ? "const int32_t* row" : "const float* row")
           << ",\n"
              "    const unsigned char* packed, const float* leaves, "
              "const int8_t* lut) {\n";
        os << "  int64_t tile = root;\n";
        os << "  const unsigned char* rec;\n";
        if (group.unrolledWalk) {
            for (int32_t d = 0; d + 1 < group.walkDepth; ++d) {
                os << "  rec = packed + tile * " << stride
                   << "; tile = childBase(rec) + evalTile(rec, row, "
                      "lut);\n";
            }
            os << "  rec = packed + tile * " << stride << ";\n";
            os << "  int child = evalTile(rec, row, lut);\n";
            os << "  return leaves[-(childBase(rec) + 1) + child];\n";
        } else {
            for (int32_t d = 0; d + 1 < group.peelDepth; ++d) {
                os << "  rec = packed + tile * " << stride
                   << "; tile = childBase(rec) + evalTile(rec, row, "
                      "lut);\n";
            }
            os << "  for (;;) {\n";
            os << "    rec = packed + tile * " << stride << ";\n";
            os << "    int32_t base = childBase(rec);\n";
            // Prefetch both candidate child records while the
            // predicates evaluate.
            os << "    if (base >= 0) {\n";
            os << "      __builtin_prefetch(packed + (int64_t)base * "
               << stride << ", 0, 3);\n";
            os << "      __builtin_prefetch(packed + ((int64_t)base + "
               << nt << ") * " << stride << ", 0, 3);\n";
            os << "    }\n";
            os << "    int child = evalTile(rec, row, lut);\n";
            os << "    if (base < 0) return leaves[-(base + 1) + "
                  "child];\n";
            os << "    tile = base + child;\n";
            os << "  }\n";
        }
        os << "}\n\n";
        return;
    }
    os << "static inline float walk_group_" << group_index
       << "(int64_t root, const float* row,\n"
          "    const float* thresholds, const int32_t* features,\n"
          "    const int16_t* shape_ids, const uint8_t* default_left,\n"
          "    const int32_t* child_base,\n"
          "    const float* leaves, const int8_t* lut) {\n";
    if (sparse) {
        os << "  int64_t tile = root;\n";
        if (group.unrolledWalk) {
            // Exactly walkDepth evaluations, no termination checks.
            for (int32_t d = 0; d + 1 < group.walkDepth; ++d) {
                os << "  tile = child_base[tile] + evalTile(tile, row, "
                      "thresholds, features, shape_ids, default_left, lut);\n";
            }
            os << "  int child = evalTile(tile, row, thresholds, "
                  "features, shape_ids, default_left, lut);\n";
            os << "  return leaves[-(child_base[tile] + 1) + child];\n";
        } else {
            for (int32_t d = 0; d + 1 < group.peelDepth; ++d) {
                os << "  tile = child_base[tile] + evalTile(tile, row, "
                      "thresholds, features, shape_ids, default_left, lut);\n";
            }
            os << "  for (;;) {\n";
            os << "    int child = evalTile(tile, row, thresholds, "
                  "features, shape_ids, default_left, lut);\n";
            os << "    int32_t base = child_base[tile];\n";
            os << "    if (base < 0) return leaves[-(base + 1) + "
                  "child];\n";
            os << "    tile = base + child;\n";
            os << "  }\n";
        }
    } else {
        os << "  int64_t local = 0;\n";
        os << "  (void)child_base; (void)leaves;\n";
        if (group.unrolledWalk) {
            for (int32_t d = 0; d < group.walkDepth; ++d) {
                os << "  local = " << (nt + 1)
                   << " * local + evalTile(root + local, row, "
                      "thresholds, features, shape_ids, default_left, lut) + 1;\n";
            }
            os << "  return thresholds[(root + local) * " << nt << "];\n";
        } else {
            for (int32_t d = 0; d < group.peelDepth; ++d) {
                os << "  local = " << (nt + 1)
                   << " * local + evalTile(root + local, row, "
                      "thresholds, features, shape_ids, default_left, lut) + 1;\n";
            }
            os << "  for (;;) {\n";
            os << "    int64_t tile = root + local;\n";
            os << "    if (shape_ids[tile] == " << lir::kLeafTileMarker
               << ") return thresholds[tile * " << nt << "];\n";
            os << "    local = " << (nt + 1)
               << " * local + evalTile(tile, row, thresholds, features, "
                  "shape_ids, default_left, lut) + 1;\n";
            os << "  }\n";
        }
    }
    os << "}\n\n";
}

/**
 * Emit the generic cold-region walk the hot-path functions fall
 * through to: the plain (unpeeled, ununrolled) tiled walk entered at
 * an arbitrary tile, mirroring the kernel runtime's walkDynamicFrom.
 * Cold entries land mid-tree, so the group's peel/unroll shape (which
 * counts levels from the root) cannot apply here.
 */
void
emitColdWalkFunction(std::ostringstream &os, const ForestBuffers &fb)
{
    int32_t nt = fb.tileSize;
    if (lir::isPackedKind(fb.layout)) {
        bool quantized = fb.layout == LayoutKind::kPackedQuantized;
        int32_t stride = quantized ? lir::packedqTileStride(nt)
                                   : lir::packedTileStride(nt);
        os << "static inline float cold_walk(int64_t root, "
              "int64_t tile, "
           << (quantized ? "const int32_t* row" : "const float* row")
           << ",\n"
              "    const unsigned char* packed, const float* leaves, "
              "const int8_t* lut) {\n";
        os << "  (void)root;\n";
        os << "  for (;;) {\n";
        os << "    const unsigned char* rec = packed + tile * "
           << stride << ";\n";
        os << "    int32_t base = childBase(rec);\n";
        os << "    int child = evalTile(rec, row, lut);\n";
        os << "    if (base < 0) return leaves[-(base + 1) + "
              "child];\n";
        os << "    tile = base + child;\n";
        os << "  }\n";
        os << "}\n\n";
        return;
    }
    os << "static inline float cold_walk(int64_t root, int64_t tile, "
          "const float* row,\n"
          "    const float* thresholds, const int32_t* features,\n"
          "    const int16_t* shape_ids, const uint8_t* default_left,\n"
          "    const int32_t* child_base,\n"
          "    const float* leaves, const int8_t* lut) {\n";
    if (fb.layout == LayoutKind::kSparse) {
        os << "  (void)root;\n";
        os << "  for (;;) {\n";
        os << "    int child = evalTile(tile, row, thresholds, "
              "features, shape_ids, default_left, lut);\n";
        os << "    int32_t base = child_base[tile];\n";
        os << "    if (base < 0) return leaves[-(base + 1) + "
              "child];\n";
        os << "    tile = base + child;\n";
        os << "  }\n";
    } else {
        // Array layout: recover the implicit-tree local index from
        // the global entry tile.
        os << "  (void)child_base; (void)leaves;\n";
        os << "  int64_t local = tile - root;\n";
        os << "  for (;;) {\n";
        os << "    int64_t t = root + local;\n";
        os << "    if (shape_ids[t] == " << lir::kLeafTileMarker
           << ") return thresholds[t * " << nt << "];\n";
        os << "    local = " << (nt + 1)
           << " * local + evalTile(t, row, thresholds, features, "
              "shape_ids, default_left, lut) + 1;\n";
        os << "  }\n";
    }
    os << "}\n\n";
}

/**
 * Recursively emit the nested-ternary outcome expression of one hot
 * path: thresholds and feature indices are immediates, so the whole
 * region compiles to straight-line compare/select code with no model
 * memory traffic. The compare forms reproduce the cold walkers'
 * routing exactly, including NaN:
 *  - f32, default-right:  (v < th)       — NaN compares false, right.
 *  - f32, default-left:   (!(v >= th))   — NaN lands left; non-NaN
 *    values order identically to (v < th).
 *  - quantized: int16-domain compare against the pre-quantized
 *    threshold, with the kQuantizedNaN sentinel routed left only
 *    under default-left (the sentinel exceeds every threshold, so the
 *    default-right form needs no extra test).
 */
void
emitHotPathExpr(std::ostringstream &os, const lir::TreeHotPath &hot,
                int32_t ref, bool quantized)
{
    if (ref < 0) {
        os << -(ref + 1);
        return;
    }
    const lir::HotPathNode &node =
        hot.nodes[static_cast<size_t>(ref)];
    os << "(";
    if (quantized) {
        os << "row[" << node.feature << "] < " << node.qthreshold;
        if (node.defaultLeft) {
            os << " || row[" << node.feature
               << "] == " << lir::kQuantizedNaN;
        }
    } else if (node.defaultLeft) {
        os << "!(row[" << node.feature
           << "] >= " << floatLiteral(node.threshold) << ")";
    } else {
        os << "row[" << node.feature << "] < "
           << floatLiteral(node.threshold);
    }
    os << " ? ";
    emitHotPathExpr(os, hot, node.left, quantized);
    os << " : ";
    emitHotPathExpr(os, hot, node.right, quantized);
    os << ")";
}

/**
 * Emit one tree's hot-path function: the nested-ternary program
 * resolves an outcome ordinal, in-region leaves return their baked
 * value, and cold exits resume the tiled walk at the recorded entry
 * tile. Signature-compatible with walk_group_* (root plus the same
 * buffer tail) so the range loop can call either per position.
 */
void
emitHotTreeFunction(std::ostringstream &os, const ForestBuffers &fb,
                    int64_t pos)
{
    const lir::TreeHotPath &hot =
        fb.hotPaths[static_cast<size_t>(pos)];
    bool quantized = fb.layout == LayoutKind::kPackedQuantized;
    os << "static inline float hot_tree_" << pos << "(int64_t root, "
       << (quantized ? "const int32_t* row" : "const float* row");
    if (lir::isPackedKind(fb.layout)) {
        os << ",\n    const unsigned char* packed, const float* "
              "leaves, const int8_t* lut) {\n";
    } else {
        os << ",\n    const float* thresholds, const int32_t* "
              "features,\n"
              "    const int16_t* shape_ids, const uint8_t* "
              "default_left,\n"
              "    const int32_t* child_base,\n"
              "    const float* leaves, const int8_t* lut) {\n";
    }
    size_t n = hot.outcomes.size();
    os << "  static const float kLeaf[" << n << "] = {";
    for (size_t i = 0; i < n; ++i) {
        if (i != 0)
            os << ",";
        if (i % 8 == 0)
            os << "\n    ";
        os << floatLiteral(hot.outcomes[i].leafValue);
    }
    os << "};\n";
    os << "  static const int64_t kCold[" << n << "] = {";
    for (size_t i = 0; i < n; ++i) {
        if (i != 0)
            os << ",";
        if (i % 8 == 0)
            os << "\n    ";
        os << hot.outcomes[i].coldEntryTile;
    }
    os << "};\n";
    os << "  int o = ";
    emitHotPathExpr(os, hot, hot.nodes.empty() ? -1 : 0, quantized);
    os << ";\n";
    os << "  int64_t cold = kCold[o];\n";
    os << "  if (__builtin_expect(cold >= 0, 0)) return "
          "cold_walk(root, cold, row, ";
    os << (lir::isPackedKind(fb.layout)
               ? "packed, leaves, lut"
               : "thresholds, features, shape_ids, default_left, "
                 "child_base, leaves, lut");
    os << ");\n";
    os << "  return kLeaf[o];\n";
    os << "}\n\n";
}

/**
 * Emit the row-parallel lane-group walker for one tree group
 * (TraversalKind::kRowParallel, tile size 1 only): 8 consecutive rows
 * walk one tree in lockstep, one AVX2 lane per row, mirroring the
 * kernel runtime's walkSparseRows8 / walkPackedRows8 /
 * walkPackedQuantizedRows8 instruction for instruction. Without AVX2
 * the function degrades to 8 scalar walk_group_<g> calls — the same
 * leaves in the same order, so predictions are unchanged.
 */
void
emitRowParallelWalkFunction(std::ostringstream &os,
                            const ForestBuffers &fb,
                            const TreeGroup &group, size_t group_index)
{
    int32_t nf = fb.numFeatures;
    bool quantized = fb.layout == LayoutKind::kPackedQuantized;
    bool packed = lir::isPackedKind(fb.layout);
    // Leaf-test-free prefix carried over from the walk shape: an
    // unrolled walk has exactly walkDepth levels, a peeled one at
    // least peelDepth.
    int32_t unchecked =
        group.unrolledWalk
            ? group.walkDepth - 1
            : (group.peelDepth > 1 ? group.peelDepth - 1 : 0);

    os << "static inline void walk_group_" << group_index
       << "_rows8(int64_t root, "
       << (quantized ? "const int32_t* rows" : "const float* rows");
    if (packed) {
        os << ",\n    const unsigned char* packed, const float* "
              "leaves, const int8_t* lut, float* out) {\n";
    } else {
        os << ",\n    const float* thresholds, const int32_t* "
              "features,\n"
              "    const int16_t* shape_ids, const uint8_t* "
              "default_left,\n"
              "    const int32_t* child_base, const float* leaves, "
              "const int8_t* lut,\n"
              "    const int32_t* default_left32, float* out) {\n";
    }
    os << "#if defined(__AVX2__)\n";
    if (!packed)
        os << "  (void)shape_ids; (void)default_left;\n";
    os << "  const __m256i lane_row = _mm256_mullo_epi32("
          "_mm256_setr_epi32(0,1,2,3,4,5,6,7), _mm256_set1_epi32("
       << nf << "));\n";
    // Tile size 1 has a single shape (id 0): the LUT collapses to the
    // child on predicate-false vs predicate-true.
    os << "  const __m256i child_false = _mm256_set1_epi32(lut[0]);\n";
    os << "  const __m256i child_true = _mm256_set1_epi32(lut[1]);\n";
    os << "  const __m256i ones = _mm256_set1_epi32(1);\n";
    os << "  __m256i tile = _mm256_set1_epi32((int32_t)root);\n";
    if (quantized) {
        os << "  const int32_t* pd = (const int32_t*)packed;\n";
        // 16-byte record: word 0 = int16 threshold | uint8 feature,
        // word 1 = shape | default-left byte, word 2 = child base.
        os << "  auto step = [&](__m256i t, __m256i* base) {\n";
        os << "    __m256i w = _mm256_slli_epi32(t, 2);\n";
        os << "    __m256i w0 = _mm256_i32gather_epi32(pd, w, 4);\n";
        os << "    __m256i th = _mm256_srai_epi32("
              "_mm256_slli_epi32(w0, 16), 16);\n";
        os << "    __m256i fi = _mm256_and_si256("
              "_mm256_srli_epi32(w0, 16), _mm256_set1_epi32(0xff));\n";
        os << "    __m256i qv = _mm256_i32gather_epi32(rows, "
              "_mm256_add_epi32(fi, lane_row), 4);\n";
        os << "    __m256i go_left = _mm256_cmpgt_epi32(th, qv);\n";
        os << "    __m256i missing = _mm256_cmpeq_epi32(qv, "
              "_mm256_set1_epi32("
           << lir::kQuantizedNaN << "));\n";
        os << "    __m256i w1 = _mm256_i32gather_epi32(pd, "
              "_mm256_add_epi32(w, ones), 4);\n";
        os << "    __m256i dlm = _mm256_cmpgt_epi32(_mm256_and_si256("
              "_mm256_srli_epi32(w1, 16), ones), "
              "_mm256_setzero_si256());\n";
        os << "    go_left = _mm256_or_si256(go_left, "
              "_mm256_and_si256(missing, dlm));\n";
        os << "    *base = _mm256_i32gather_epi32(pd, "
              "_mm256_add_epi32(w, _mm256_set1_epi32(2)), 4);\n";
        os << "    return _mm256_blendv_epi8(child_false, child_true, "
              "go_left);\n";
        os << "  };\n";
    } else if (packed) {
        os << "  const float* pdf = (const float*)packed;\n";
        os << "  const int32_t* pd = (const int32_t*)packed;\n";
        // 16-byte record: word 0 = f32 threshold, word 1 = int16
        // feature | shape, word 2 = default-left byte, word 3 =
        // child base.
        os << "  auto step = [&](__m256i t, __m256i* base) {\n";
        os << "    __m256i w = _mm256_slli_epi32(t, 2);\n";
        os << "    __m256 th = _mm256_i32gather_ps(pdf, w, 4);\n";
        os << "    __m256i w1 = _mm256_i32gather_epi32(pd, "
              "_mm256_add_epi32(w, ones), 4);\n";
        os << "    __m256i fi = _mm256_srai_epi32("
              "_mm256_slli_epi32(w1, 16), 16);\n";
        os << "    __m256 fv = _mm256_i32gather_ps(rows, "
              "_mm256_add_epi32(fi, lane_row), 4);\n";
        os << "    __m256 go_left = _mm256_cmp_ps(fv, th, "
              "_CMP_LT_OQ);\n";
        os << "    __m256 missing = _mm256_cmp_ps(fv, fv, "
              "_CMP_UNORD_Q);\n";
        os << "    __m256i w2 = _mm256_i32gather_epi32(pd, "
              "_mm256_add_epi32(w, _mm256_set1_epi32(2)), 4);\n";
        os << "    __m256 dlm = _mm256_castsi256_ps(_mm256_cmpgt_epi32("
              "_mm256_and_si256(w2, ones), _mm256_setzero_si256()));\n";
        os << "    go_left = _mm256_or_ps(go_left, _mm256_and_ps("
              "missing, dlm));\n";
        os << "    *base = _mm256_i32gather_epi32(pd, "
              "_mm256_add_epi32(w, _mm256_set1_epi32(3)), 4);\n";
        os << "    return _mm256_blendv_epi8(child_false, child_true, "
              "_mm256_castps_si256(go_left));\n";
        os << "  };\n";
    } else {
        os << "  auto step = [&](__m256i t, __m256i* base) {\n";
        os << "    __m256 th = _mm256_i32gather_ps(thresholds, t, "
              "4);\n";
        os << "    __m256i fi = _mm256_i32gather_epi32(features, t, "
              "4);\n";
        os << "    __m256 fv = _mm256_i32gather_ps(rows, "
              "_mm256_add_epi32(fi, lane_row), 4);\n";
        os << "    __m256 go_left = _mm256_cmp_ps(fv, th, "
              "_CMP_LT_OQ);\n";
        os << "    __m256 missing = _mm256_cmp_ps(fv, fv, "
              "_CMP_UNORD_Q);\n";
        os << "    __m256i dl = _mm256_i32gather_epi32(default_left32, "
              "t, 4);\n";
        os << "    __m256 dlm = _mm256_castsi256_ps(_mm256_cmpgt_epi32("
              "dl, _mm256_setzero_si256()));\n";
        os << "    go_left = _mm256_or_ps(go_left, _mm256_and_ps("
              "missing, dlm));\n";
        os << "    *base = _mm256_i32gather_epi32(child_base, t, 4);\n";
        os << "    return _mm256_blendv_epi8(child_false, child_true, "
              "_mm256_castps_si256(go_left));\n";
        os << "  };\n";
    }
    if (unchecked > 0) {
        os << "  for (int d = 0; d < " << unchecked << "; ++d) {\n";
        os << "    __m256i base;\n";
        os << "    __m256i child = step(tile, &base);\n";
        os << "    tile = _mm256_add_epi32(base, child);\n";
        os << "  }\n";
    }
    os << "  __m256 result = _mm256_setzero_ps();\n";
    os << "  __m256i done = _mm256_setzero_si256();\n";
    os << "  for (;;) {\n";
    os << "    __m256i base;\n";
    os << "    __m256i child = step(tile, &base);\n";
    os << "    __m256i leaf = _mm256_cmpgt_epi32("
          "_mm256_setzero_si256(), base);\n";
    os << "    __m256i leaf_index = _mm256_sub_epi32(child, "
          "_mm256_add_epi32(base, ones));\n";
    os << "    result = _mm256_mask_i32gather_ps(result, leaves, "
          "leaf_index, _mm256_castsi256_ps(leaf), 4);\n";
    os << "    done = _mm256_or_si256(done, leaf);\n";
    os << "    if (_mm256_movemask_ps(_mm256_castsi256_ps(done)) == "
          "0xff) break;\n";
    // Retired lanes stay on their final tile so trailing gathers
    // remain in bounds.
    os << "    tile = _mm256_blendv_epi8(_mm256_add_epi32(base, "
          "child), tile, leaf);\n";
    os << "  }\n";
    os << "  _mm256_storeu_ps(out, result);\n";
    os << "#else\n";
    if (packed) {
        os << "  for (int i = 0; i < 8; ++i) out[i] = walk_group_"
           << group_index << "(root, rows + (int64_t)i * " << nf
           << ", packed, leaves, lut);\n";
    } else {
        os << "  (void)default_left32;\n";
        os << "  for (int i = 0; i < 8; ++i) out[i] = walk_group_"
           << group_index << "(root, rows + (int64_t)i * " << nf
           << ", thresholds, features, shape_ids, default_left, "
              "child_base, leaves, lut);\n";
    }
    os << "#endif\n";
    os << "}\n\n";
}

/**
 * Emit the multiclass constants and the softmax finisher: the class
 * of each (execution-order) tree position, and a routine replicating
 * model::softmaxInPlace operation-for-operation so compiled outputs
 * stay bit-identical to the kernel runtime.
 */
void
emitMulticlassSupport(std::ostringstream &os, const ForestBuffers &fb)
{
    os << "static const int kNumClasses = " << fb.numClasses << ";\n";
    os << "static const int32_t kTreeClass[" << fb.numTrees
       << "] = {";
    for (int64_t t = 0; t < fb.numTrees; ++t) {
        if (t != 0)
            os << ",";
        if (t % 20 == 0)
            os << "\n    ";
        os << fb.treeClass[static_cast<size_t>(t)];
    }
    os << "};\n\n";
    if (fb.objective == model::Objective::kMulticlassSoftmax) {
        os << "static inline void finishRow(float* v) {\n"
              "  float m = v[0];\n"
              "  for (int k = 1; k < kNumClasses; ++k) m = "
              "v[k] > m ? v[k] : m;\n"
              "  float sum = 0.0f;\n"
              "  for (int k = 0; k < kNumClasses; ++k) { v[k] = "
              "std::exp(v[k] - m); sum += v[k]; }\n"
              "  for (int k = 0; k < kNumClasses; ++k) v[k] /= sum;\n"
              "}\n\n";
    } else {
        os << "static inline void finishRow(float*) {}\n\n";
    }
}

/**
 * Emit the per-feature affine maps and the row-quantization helper for
 * the quantized packed layout. The expression mirrors
 * lir::QuantizationInfo::quantizeValue token-for-token (all integer
 * and exactly-rounded float ops), so generated code and the kernel
 * runtime quantize rows identically.
 */
void
emitQuantizationSupport(std::ostringstream &os, const ForestBuffers &fb)
{
    const lir::QuantizationInfo &q = fb.quantization;
    auto emit_array = [&](const char *name,
                          const std::vector<float> &values) {
        os << "static const float " << name << "[" << values.size()
           << "] = {";
        for (size_t f = 0; f < values.size(); ++f) {
            if (f != 0)
                os << ",";
            if (f % 8 == 0)
                os << "\n    ";
            os << floatLiteral(values[f]);
        }
        os << "};\n";
    };
    emit_array("kQScale", q.scale);
    emit_array("kQOffset", q.offset);
    os << "\nstatic inline int32_t quantize_value(float v, int f) {\n"
          "  if (v != v) return "
       << lir::kQuantizedNaN
       << ";\n"
          "  float scaled = (v - kQOffset[f]) * kQScale[f];\n"
          "  if (scaled >= 32766.0f) return 32766;\n"
          "  if (scaled <= -32768.0f) return -32768;\n"
          "  return (int32_t)std::lrintf(scaled);\n"
          "}\n\n";
}

} // namespace

std::string
emitPredictForestSource(const ForestBuffers &fb,
                        const std::vector<TreeGroup> &groups,
                        const hir::Schedule &schedule)
{
    fatalIf(groups.empty(), "source emission requires tree groups");
    bool multiclass = fb.numClasses > 1;
    std::ostringstream os;
    os << "// Generated by treebeard::codegen (schedule: "
       << schedule.toString() << ").\n";
    os << "#include <cstdint>\n#include <cmath>\n#include <cstddef>\n";
    os << "#if defined(__AVX2__)\n#include <immintrin.h>\n#endif\n\n";

    bool quantized = fb.layout == LayoutKind::kPackedQuantized;
    // Row-parallel traversal: 8 rows walk one tree in lockstep, which
    // forces a tree-major row loop regardless of loopOrder (the lane
    // group owns one tree at a time). Tile size 1 on the sparse and
    // packed layouts gets the vectorized lane-group walkers; other
    // configurations keep scalar walks driven 8 rows at a time — the
    // same lockstep structure, and bit-identical either way.
    bool row_parallel =
        schedule.traversal == hir::TraversalKind::kRowParallel;
    // Hot-path mode: every position gets its own inner row loop (the
    // hot program is per tree, not per group), which subsumes the
    // interleave and lane-group inner-loop shapes — those axes are
    // dropped rather than mixed. Trees the lowering left without a
    // region still run their group's specialized walker.
    bool hot = !fb.hotPaths.empty();
    bool rows8 = row_parallel && fb.tileSize == 1 &&
                 fb.layout != LayoutKind::kArray && !hot;
    emitEvalTile(os, fb);
    if (quantized)
        emitQuantizationSupport(os, fb);
    if (hot)
        emitColdWalkFunction(os, fb);
    for (size_t g = 0; g < groups.size(); ++g) {
        emitWalkFunction(os, fb, groups[g], g);
        if (rows8)
            emitRowParallelWalkFunction(os, fb, groups[g], g);
    }
    if (hot) {
        for (int64_t pos = 0; pos < fb.numTrees; ++pos) {
            if (!fb.hotPaths[static_cast<size_t>(pos)].empty())
                emitHotTreeFunction(os, fb, pos);
        }
    }
    if (multiclass)
        emitMulticlassSupport(os, fb);

    int32_t k = schedule.interleaveFactor;
    bool one_tree =
        schedule.loopOrder == hir::LoopOrder::kOneTreeAtATime;
    if (row_parallel) {
        one_tree = true;
        k = 8;
    }
    // Trailing arguments every walk_group_* call passes through.
    std::string walk_tail =
        lir::isPackedKind(fb.layout)
            ? "packed, leaves, lut"
            : "thresholds, features, shape_ids, default_left, "
              "child_base, leaves, lut";
    // Rows enter the walks pre-quantized in the quantized layout.
    std::string rows_name = quantized ? "qrows" : "rows";
    std::string row_decl =
        quantized ? "const int32_t* row = qrows" : "const float* row = rows";
    // The model-buffer parameter block every entry point forwards.
    const char *buffer_params =
        "    const float* thresholds, const int32_t* features,\n"
        "    const int16_t* shape_ids, const uint8_t* default_left,\n"
        "    const int32_t* child_base,\n"
        "    const float* leaves, const int8_t* lut,\n"
        "    const int64_t* tree_first_tile,\n"
        "    const unsigned char* packed,\n"
        "    const int32_t* default_left32";
    const char *buffer_args =
        "thresholds, features, shape_ids, default_left, child_base, "
        "leaves, lut, tree_first_tile, packed, default_left32";
    // The lane-group walkers take the walk tail plus, on the sparse
    // layout, the widened default-direction shadow.
    std::string walk8_tail =
        lir::isPackedKind(fb.layout) ? walk_tail
                                     : walk_tail + ", default_left32";

    if (quantized) {
        // Quantize a row span once up front; the walks then compare
        // in int16 with no per-tile float work.
        os << "static inline void quantize_rows(const float* rows, "
              "int64_t num_rows, int32_t* out) {\n";
        os << "  const int nf = " << fb.numFeatures << ";\n";
        os << "  for (int64_t r = 0; r < num_rows; ++r)\n";
        os << "    for (int f = 0; f < nf; ++f)\n";
        os << "      out[r * nf + f] = "
              "quantize_value(rows[r * nf + f], f);\n";
        os << "}\n\n";
    }

    // The range core every entry point funnels into: it computes the
    // num_rows rows starting at rows/qrows and writes the matching
    // span of predictions, so callers hand it pointers already offset
    // to their chunk and it indexes from zero either way.
    os << "static void predict_range("
       << (quantized ? "const int32_t* qrows" : "const float* rows")
       << ", int64_t num_rows, float* predictions,\n"
       << buffer_params << ") {\n";
    os << "  const int nf = " << fb.numFeatures << ";\n";
    if (lir::isPackedKind(fb.layout)) {
        os << "  (void)thresholds; (void)features; (void)shape_ids; "
              "(void)default_left; (void)child_base;\n";
    } else {
        os << "  (void)packed;\n";
    }
    if (!(rows8 && !lir::isPackedKind(fb.layout)))
        os << "  (void)default_left32;\n";

    auto emit_objective = [&](const std::string &target,
                              const std::string &margin) {
        if (fb.objective == model::Objective::kBinaryLogistic) {
            os << target << " = 1.0f / (1.0f + std::exp(-(" << margin
               << ")));\n";
        } else {
            os << target << " = " << margin << ";\n";
        }
    };

    if (hot) {
        // Tree-major with per-position bodies: hot trees run their
        // baked comparison program, the rest their group's walker.
        // Per-row accumulation still sums positions ascending, so
        // predictions stay bit-identical to every other shape.
        if (multiclass) {
            os << "  float* acc = new float[num_rows * "
                  "kNumClasses];\n";
            os << "  for (int64_t i = 0; i < num_rows * kNumClasses; "
                  "++i) acc[i] = "
               << floatLiteral(fb.baseScore) << ";\n";
        } else {
            os << "  float* acc = new float[num_rows];\n";
            os << "  for (int64_t r = 0; r < num_rows; ++r) acc[r] = "
               << floatLiteral(fb.baseScore) << ";\n";
        }
        for (size_t g = 0; g < groups.size(); ++g) {
            const TreeGroup &group = groups[g];
            for (int64_t pos = group.beginPos; pos < group.endPos;
                 ++pos) {
                bool tree_hot =
                    !fb.hotPaths[static_cast<size_t>(pos)].empty();
                std::string target =
                    multiclass
                        ? "acc[r * kNumClasses + " +
                              std::to_string(fb.treeClass
                                                 [static_cast<size_t>(
                                                     pos)]) +
                              "]"
                        : "acc[r]";
                os << "  { int64_t root = tree_first_tile[" << pos
                   << "];\n";
                os << "    for (int64_t r = 0; r < num_rows; ++r) "
                   << target << " += ";
                if (tree_hot) {
                    os << "hot_tree_" << pos << "(root, " << rows_name
                       << " + r * nf, " << walk_tail << ");\n";
                } else {
                    os << "walk_group_" << g << "(root, " << rows_name
                       << " + r * nf, " << walk_tail << ");\n";
                }
                os << "  }\n";
            }
        }
        if (multiclass) {
            os << "  for (int64_t r = 0; r < num_rows; ++r) {\n";
            os << "    float* out = predictions + r * kNumClasses;\n";
            os << "    for (int c = 0; c < kNumClasses; ++c) out[c] = "
                  "acc[r * kNumClasses + c];\n";
            os << "    finishRow(out);\n";
            os << "  }\n";
        } else {
            os << "  for (int64_t r = 0; r < num_rows; ++r) ";
            emit_objective("predictions[r]", "acc[r]");
        }
        os << "  delete[] acc;\n";
    } else if (one_tree && multiclass) {
        // Per-(row, class) accumulators; each tree feeds its class.
        os << "  float* acc = new float[num_rows * kNumClasses];\n";
        os << "  for (int64_t i = 0; i < num_rows * kNumClasses; ++i) "
              "acc[i] = "
           << floatLiteral(fb.baseScore) << ";\n";
        for (size_t g = 0; g < groups.size(); ++g) {
            const TreeGroup &group = groups[g];
            os << "  for (int64_t pos = " << group.beginPos
               << "; pos < " << group.endPos << "; ++pos) {\n";
            os << "    int64_t root = tree_first_tile[pos];\n";
            os << "    const int64_t cls = kTreeClass[pos];\n";
            os << "    int64_t r = 0;\n";
            if (rows8) {
                // Row-parallel lane groups: 8 rows per walk.
                os << "    for (; r + 8 <= num_rows; r += 8) {\n";
                os << "      float out8[8];\n";
                os << "      walk_group_" << g << "_rows8(root, "
                   << rows_name << " + r * nf, " << walk8_tail
                   << ", out8);\n";
                os << "      for (int i = 0; i < 8; ++i) acc[(r + i) * "
                      "kNumClasses + cls] += out8[i];\n";
                os << "    }\n";
            } else if (k > 1) {
                // Unroll-and-jam over rows: K interleaved walks.
                os << "    for (; r + " << k
                   << " <= num_rows; r += " << k << ") {\n";
                for (int32_t i = 0; i < k; ++i) {
                    os << "      acc[(r + " << i
                       << ") * kNumClasses + cls] += walk_group_" << g
                       << "(root, " << rows_name << " + (r + " << i
                       << ") * nf, " << walk_tail << ");\n";
                }
                os << "    }\n";
            }
            os << "    for (; r < num_rows; ++r) acc[r * kNumClasses "
                  "+ cls] += walk_group_"
               << g << "(root, " << rows_name << " + r * nf, "
               << walk_tail << ");\n";
            os << "  }\n";
        }
        os << "  for (int64_t r = 0; r < num_rows; ++r) {\n";
        os << "    float* out = predictions + r * kNumClasses;\n";
        os << "    for (int c = 0; c < kNumClasses; ++c) out[c] = "
              "acc[r * kNumClasses + c];\n";
        os << "    finishRow(out);\n";
        os << "  }\n";
        os << "  delete[] acc;\n";
    } else if (one_tree) {
        os << "  float* acc = new float[num_rows];\n";
        os << "  for (int64_t r = 0; r < num_rows; ++r) acc[r] = "
           << floatLiteral(fb.baseScore) << ";\n";
        for (size_t g = 0; g < groups.size(); ++g) {
            const TreeGroup &group = groups[g];
            os << "  for (int64_t pos = " << group.beginPos
               << "; pos < " << group.endPos << "; ++pos) {\n";
            os << "    int64_t root = tree_first_tile[pos];\n";
            os << "    int64_t r = 0;\n";
            if (rows8) {
                // Row-parallel lane groups: 8 rows per walk.
                os << "    for (; r + 8 <= num_rows; r += 8) {\n";
                os << "      float out8[8];\n";
                os << "      walk_group_" << g << "_rows8(root, "
                   << rows_name << " + r * nf, " << walk8_tail
                   << ", out8);\n";
                os << "      for (int i = 0; i < 8; ++i) acc[r + i] += "
                      "out8[i];\n";
                os << "    }\n";
            } else if (k > 1) {
                // Unroll-and-jam over rows: K interleaved walks.
                os << "    for (; r + " << k
                   << " <= num_rows; r += " << k << ") {\n";
                for (int32_t i = 0; i < k; ++i) {
                    os << "      acc[r + " << i << "] += walk_group_"
                       << g << "(root, " << rows_name << " + (r + " << i
                       << ") * nf, " << walk_tail << ");\n";
                }
                os << "    }\n";
            }
            os << "    for (; r < num_rows; ++r) acc[r] += walk_group_"
               << g << "(root, " << rows_name << " + r * nf, "
               << walk_tail << ");\n";
            os << "  }\n";
        }
        os << "  for (int64_t r = 0; r < num_rows; ++r) ";
        emit_objective("predictions[r]", "acc[r]");
        os << "  delete[] acc;\n";
    } else if (multiclass) {
        os << "  for (int64_t r = 0; r < num_rows; ++r) {\n";
        os << "    " << row_decl << " + r * nf;\n";
        os << "    float margins[kNumClasses];\n";
        os << "    for (int c = 0; c < kNumClasses; ++c) margins[c] = "
           << floatLiteral(fb.baseScore) << ";\n";
        for (size_t g = 0; g < groups.size(); ++g) {
            const TreeGroup &group = groups[g];
            os << "    {\n";
            os << "      int64_t pos = " << group.beginPos << ";\n";
            if (k > 1) {
                os << "      for (; pos + " << k << " <= "
                   << group.endPos << "; pos += " << k << ") {\n";
                for (int32_t i = 0; i < k; ++i) {
                    os << "        margins[kTreeClass[pos + " << i
                       << "]] += walk_group_" << g
                       << "(tree_first_tile[pos + " << i << "], row, "
                       << walk_tail << ");\n";
                }
                os << "      }\n";
            }
            os << "      for (; pos < " << group.endPos
               << "; ++pos) margins[kTreeClass[pos]] += walk_group_"
               << g << "(tree_first_tile[pos], row, " << walk_tail
               << ");\n";
            os << "    }\n";
        }
        os << "    float* out = predictions + r * kNumClasses;\n";
        os << "    for (int c = 0; c < kNumClasses; ++c) out[c] = "
              "margins[c];\n";
        os << "    finishRow(out);\n";
        os << "  }\n";
    } else {
        os << "  for (int64_t r = 0; r < num_rows; ++r) {\n";
        os << "    " << row_decl << " + r * nf;\n";
        os << "    float margin = " << floatLiteral(fb.baseScore)
           << ";\n";
        for (size_t g = 0; g < groups.size(); ++g) {
            const TreeGroup &group = groups[g];
            os << "    {\n";
            os << "      int64_t pos = " << group.beginPos << ";\n";
            if (k > 1) {
                os << "      for (; pos + " << k << " <= "
                   << group.endPos << "; pos += " << k << ") {\n";
                for (int32_t i = 0; i < k; ++i) {
                    os << "        margin += walk_group_" << g
                       << "(tree_first_tile[pos + " << i << "], row, "
                       << walk_tail << ");\n";
                }
                os << "      }\n";
            }
            os << "      for (; pos < " << group.endPos
               << "; ++pos) margin += walk_group_" << g
               << "(tree_first_tile[pos], row, " << walk_tail
               << ");\n";
            os << "    }\n";
        }
        os << "    ";
        emit_objective("predictions[r]", "margin");
        os << "  }\n";
    }
    os << "}\n\n";

    // Chunking of the in-TU parallel row loop: the schedule can force
    // a chunk size; otherwise one contiguous chunk per worker.
    std::string chunk_expr =
        schedule.rowChunkRows > 0
            ? std::to_string(schedule.rowChunkRows)
            : "(num_rows + num_workers - 1) / num_workers";
    int32_t outs = fb.numClasses;
    int32_t nf = fb.numFeatures;

    // Serial entry: the whole batch as one range.
    os << "extern \"C\" void treebeard_predict(const float* rows, "
          "int64_t num_rows, float* predictions,\n"
       << buffer_params << ") {\n";
    os << "  if (num_rows <= 0) return;\n";
    if (quantized) {
        os << "  int32_t* qrows = new int32_t[num_rows * " << nf
           << "];\n";
        os << "  quantize_rows(rows, num_rows, qrows);\n";
        os << "  predict_range(qrows, num_rows, predictions, "
           << buffer_args << ");\n";
        os << "  delete[] qrows;\n";
    } else {
        os << "  predict_range(rows, num_rows, predictions, "
           << buffer_args << ");\n";
    }
    os << "}\n\n";

    // Parallel row loop, emitted into the TU: worker w computes the
    // chunks congruent to w mod num_workers, so the runtime only fans
    // out worker ids instead of partitioning rows above this function.
    os << "extern \"C\" void treebeard_predict_worker(int32_t worker, "
          "int32_t num_workers,\n"
          "    const float* rows, int64_t num_rows, "
          "float* predictions,\n"
       << buffer_params << ") {\n";
    os << "  if (num_rows <= 0 || num_workers <= 0 || worker < 0) "
          "return;\n";
    os << "  int64_t chunk = " << chunk_expr << ";\n";
    os << "  if (chunk < 1) chunk = 1;\n";
    if (quantized)
        os << "  int32_t* qbuf = new int32_t[chunk * " << nf << "];\n";
    os << "  for (int64_t begin = (int64_t)worker * chunk; "
          "begin < num_rows; begin += (int64_t)num_workers * chunk) "
          "{\n";
    os << "    int64_t end = begin + chunk < num_rows ? begin + chunk "
          ": num_rows;\n";
    if (quantized) {
        os << "    quantize_rows(rows + begin * " << nf
           << ", end - begin, qbuf);\n";
        os << "    predict_range(qbuf, end - begin, predictions + "
              "begin * "
           << outs << ", " << buffer_args << ");\n";
    } else {
        os << "    predict_range(rows + begin * " << nf
           << ", end - begin, predictions + begin * " << outs << ", "
           << buffer_args << ");\n";
    }
    os << "  }\n";
    if (quantized)
        os << "  delete[] qbuf;\n";
    os << "}\n";

    if (quantized) {
        // Resident-dataset entries: rows arrive pre-quantized (the
        // Session's bound Dataset image), so no quantization runs at
        // predict time at all.
        os << "\nextern \"C\" void treebeard_predict_resident("
              "const int32_t* qrows, int64_t num_rows, "
              "float* predictions,\n"
           << buffer_params << ") {\n";
        os << "  if (num_rows <= 0) return;\n";
        os << "  predict_range(qrows, num_rows, predictions, "
           << buffer_args << ");\n";
        os << "}\n\n";
        os << "extern \"C\" void treebeard_predict_resident_worker("
              "int32_t worker, int32_t num_workers,\n"
              "    const int32_t* qrows, int64_t num_rows, "
              "float* predictions,\n"
           << buffer_params << ") {\n";
        os << "  if (num_rows <= 0 || num_workers <= 0 || worker < 0) "
              "return;\n";
        os << "  int64_t chunk = " << chunk_expr << ";\n";
        os << "  if (chunk < 1) chunk = 1;\n";
        os << "  for (int64_t begin = (int64_t)worker * chunk; "
              "begin < num_rows; begin += (int64_t)num_workers * "
              "chunk) {\n";
        os << "    int64_t end = begin + chunk < num_rows ? begin + "
              "chunk : num_rows;\n";
        os << "    predict_range(qrows + begin * " << nf
           << ", end - begin, predictions + begin * " << outs << ", "
           << buffer_args << ");\n";
        os << "  }\n";
        os << "}\n";
    }
    return os.str();
}

JitOptions
withHostSimdFlags(JitOptions options)
{
#if defined(__x86_64__) || defined(__i386__)
    // The emitted source guards its AVX2 tile evaluation on __AVX2__;
    // light it up when this machine can run the instructions.
    if (__builtin_cpu_supports("avx2") &&
        options.extraFlags.find("-mavx2") == std::string::npos) {
        options.extraFlags +=
            options.extraFlags.empty() ? "-mavx2" : " -mavx2";
    }
#endif
    return options;
}

JitCompiledSession::JitCompiledSession(lir::ForestBuffers buffers,
                                       std::vector<TreeGroup> groups,
                                       const hir::Schedule &schedule,
                                       const JitOptions &jit_options)
    : buffers_(std::move(buffers))
{
    // The emitted row-parallel sparse walker gathers default-direction
    // bits with 4-byte word gathers (the emitted scalar walker reads
    // default_left unconditionally, so the vector mirror does too);
    // widen the uint8 array so those gathers stay in bounds.
    if (schedule.traversal == hir::TraversalKind::kRowParallel &&
        buffers_.tileSize == 1 &&
        buffers_.layout == lir::LayoutKind::kSparse) {
        dlWide_.assign(buffers_.defaultLeft.begin(),
                       buffers_.defaultLeft.end());
    }
    source_ = emitPredictForestSource(buffers_, groups, schedule);
    module_ = std::make_unique<JitModule>(source_,
                                          withHostSimdFlags(jit_options));
    predict_ = module_->function<PredictFn>("treebeard_predict");
    predictWorker_ =
        module_->function<PredictWorkerFn>("treebeard_predict_worker");
    // Only quantized-packed plans emit the resident entries.
    predictResident_ = module_->functionOrNull<PredictResidentFn>(
        "treebeard_predict_resident");
    predictResidentWorker_ =
        module_->functionOrNull<PredictResidentWorkerFn>(
            "treebeard_predict_resident_worker");
}

JitCompiledSession::BufferArgs
JitCompiledSession::bufferArgs() const
{
    // Layout-specific buffers may be empty (sparse-only arrays in the
    // array layout, every SoA array in the packed layout); the
    // generated code never dereferences them in those cases.
    BufferArgs args;
    args.childBase =
        buffers_.childBase.empty() ? nullptr : buffers_.childBase.data();
    args.leaves =
        buffers_.leaves.empty() ? nullptr : buffers_.leaves.data();
    args.packed = lir::isPackedKind(buffers_.layout)
                      ? buffers_.packedData()
                      : nullptr;
    args.defaultLeft32 = dlWide_.empty() ? nullptr : dlWide_.data();
    return args;
}

void
JitCompiledSession::predict(const float *rows, int64_t num_rows,
                            float *predictions) const
{
    BufferArgs a = bufferArgs();
    predict_(rows, num_rows, predictions, buffers_.thresholds.data(),
             buffers_.featureIndices.data(), buffers_.shapeIds.data(),
             buffers_.defaultLeft.data(), a.childBase, a.leaves,
             buffers_.shapes->lutData(), buffers_.treeFirstTile.data(),
             a.packed, a.defaultLeft32);
}

void
JitCompiledSession::predictWorker(int32_t worker, int32_t num_workers,
                                  const float *rows, int64_t num_rows,
                                  float *predictions) const
{
    BufferArgs a = bufferArgs();
    predictWorker_(worker, num_workers, rows, num_rows, predictions,
                   buffers_.thresholds.data(),
                   buffers_.featureIndices.data(),
                   buffers_.shapeIds.data(), buffers_.defaultLeft.data(),
                   a.childBase, a.leaves, buffers_.shapes->lutData(),
                   buffers_.treeFirstTile.data(), a.packed,
                   a.defaultLeft32);
}

void
JitCompiledSession::predictResident(const int32_t *qrows,
                                    int64_t num_rows,
                                    float *predictions) const
{
    panicIf(predictResident_ == nullptr,
            "plan has no resident predict entry");
    BufferArgs a = bufferArgs();
    predictResident_(qrows, num_rows, predictions,
                     buffers_.thresholds.data(),
                     buffers_.featureIndices.data(),
                     buffers_.shapeIds.data(),
                     buffers_.defaultLeft.data(), a.childBase, a.leaves,
                     buffers_.shapes->lutData(),
                     buffers_.treeFirstTile.data(), a.packed,
                     a.defaultLeft32);
}

void
JitCompiledSession::predictResidentWorker(int32_t worker,
                                          int32_t num_workers,
                                          const int32_t *qrows,
                                          int64_t num_rows,
                                          float *predictions) const
{
    panicIf(predictResidentWorker_ == nullptr,
            "plan has no resident predict entry");
    BufferArgs a = bufferArgs();
    predictResidentWorker_(worker, num_workers, qrows, num_rows,
                           predictions, buffers_.thresholds.data(),
                           buffers_.featureIndices.data(),
                           buffers_.shapeIds.data(),
                           buffers_.defaultLeft.data(), a.childBase,
                           a.leaves, buffers_.shapes->lutData(),
                           buffers_.treeFirstTile.data(), a.packed,
                           a.defaultLeft32);
}

} // namespace treebeard::codegen
