/**
 * @file
 * A source-level JIT: compile a generated C++ translation unit with
 * the system compiler into a shared object and dlopen it. This is the
 * repo's stand-in for the LLVM ORC JIT the original system uses (and
 * is exactly how Treelite deploys its generated code).
 *
 * Compilations are memoized per process on (compiler, flags, source):
 * constructing a second JitModule with an identical key shares the
 * already-loaded library instead of invoking the compiler again. The
 * tuner exercises this heavily — schedule exploration re-emits the
 * same source for configurations that differ only in knobs the
 * emitter ignores.
 *
 * Setting JitOptions::cacheDir additionally persists compiled shared
 * objects on disk under a content hash of the cache key, so a *fresh
 * process* compiling the same source is served by dlopen'ing the
 * cached .so without ever invoking the system compiler (the way
 * ccache amortizes repeated CLI/tuner runs on one model). Corrupt or
 * truncated entries fall back to a recompile that overwrites them.
 * JitOptions::cacheMaxBytes bounds the directory: after each store the
 * least-recently-used entries (by mtime; disk hits touch their entry)
 * are evicted until the cache fits, so long-lived tuner sweeps cannot
 * grow it without bound.
 */
#ifndef TREEBEARD_CODEGEN_SYSTEM_JIT_H
#define TREEBEARD_CODEGEN_SYSTEM_JIT_H

#include <cstdint>
#include <memory>
#include <string>

namespace treebeard::codegen {

/** Options for one JIT compilation. */
struct JitOptions
{
    /** Optimization level flag passed to the compiler. */
    std::string optLevel = "-O3";
    /** Compiler executable. */
    std::string compiler = "c++";
    /** Extra flags (e.g. "-mavx2"). */
    std::string extraFlags;
    /**
     * Keep the temp directory (for debugging generated code). Also
     * bypasses the compilation caches so the artifacts are private to
     * this module.
     */
    bool keepArtifacts = false;
    /**
     * Persistent cross-process compile-cache directory ("" = off).
     * Compiled shared objects are stored as
     * <cacheDir>/treebeard-<hash>.so keyed on (compiler, flags,
     * source); the directory is created on demand. Ignored when
     * keepArtifacts is set.
     */
    std::string cacheDir;
    /**
     * Disk-cache size cap in bytes (0 = unlimited). When a store
     * pushes the cache directory's entries past the cap, the
     * least-recently-used entries are removed — oldest mtime first,
     * never the entry just stored — until the total fits. Disk hits
     * refresh their entry's mtime so hot models stay resident.
     */
    int64_t cacheMaxBytes = 0;
};

/** Process-wide JIT compilation cache counters. */
struct JitCacheStats
{
    /** In-memory (per-process) memoization. */
    int64_t lookups = 0;
    int64_t hits = 0;
    /** On-disk (cross-process) cache; counted only with a cacheDir. */
    int64_t diskLookups = 0;
    int64_t diskHits = 0;
    int64_t diskStores = 0;
    /** Entries removed by the cacheMaxBytes LRU cap. */
    int64_t diskEvictions = 0;
};

/** Snapshot of the cache counters (for tests and diagnostics). */
JitCacheStats jitCacheStats();

/**
 * Drop the in-memory memoization entries (already-loaded libraries
 * stay alive through the modules holding them) so the next lookup
 * falls through to the on-disk cache exactly as a fresh process
 * would. Intended for tests of the disk cache.
 */
void clearJitMemoryCacheForTesting();

/**
 * One compiled-and-loaded shared object. The underlying library is
 * shared with the process-wide cache and other modules compiled from
 * the same (compiler, flags, source) key; it unloads when the last
 * reference (including the cache's, at process exit) drops.
 */
class JitModule
{
  public:
    /**
     * Compile @p source and load the result, or attach to the cached
     * library for this key.
     * @throws Error when the compiler or loader fails (the compiler's
     * stderr is included in the message).
     */
    JitModule(const std::string &source, const JitOptions &options = {});

    JitModule(const JitModule &) = delete;
    JitModule &operator=(const JitModule &) = delete;
    JitModule(JitModule &&other) noexcept = default;
    JitModule &operator=(JitModule &&other) noexcept = default;
    ~JitModule();

    /**
     * Resolve @p name (must be extern "C" in the generated source).
     * @throws Error when the symbol is missing.
     */
    void *symbol(const std::string &name) const;

    /**
     * Resolve @p name, returning nullptr instead of throwing when the
     * symbol is absent (for entry points only some plans emit).
     */
    void *symbolOrNull(const std::string &name) const;

    /** Typed convenience wrapper over symbol(). */
    template <typename Fn>
    Fn
    function(const std::string &name) const
    {
        return reinterpret_cast<Fn>(symbol(name));
    }

    /** Typed wrapper over symbolOrNull(). */
    template <typename Fn>
    Fn
    functionOrNull(const std::string &name) const
    {
        return reinterpret_cast<Fn>(symbolOrNull(name));
    }

    /** Seconds spent in the external compiler (0 on a cache hit). */
    double compileSeconds() const { return compileSeconds_; }

    /** Path of the loaded shared object. */
    const std::string &libraryPath() const;

    /** Implementation detail, public only for the cache machinery. */
    struct LoadedLibrary;

  private:
    std::shared_ptr<LoadedLibrary> library_;
    double compileSeconds_ = 0.0;
};

/** True when a working system compiler is available. */
bool systemCompilerAvailable(const JitOptions &options = {});

} // namespace treebeard::codegen

#endif // TREEBEARD_CODEGEN_SYSTEM_JIT_H
