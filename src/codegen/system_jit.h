/**
 * @file
 * A source-level JIT: compile a generated C++ translation unit with
 * the system compiler into a shared object and dlopen it. This is the
 * repo's stand-in for the LLVM ORC JIT the original system uses (and
 * is exactly how Treelite deploys its generated code).
 */
#ifndef TREEBEARD_CODEGEN_SYSTEM_JIT_H
#define TREEBEARD_CODEGEN_SYSTEM_JIT_H

#include <string>

namespace treebeard::codegen {

/** Options for one JIT compilation. */
struct JitOptions
{
    /** Optimization level flag passed to the compiler. */
    std::string optLevel = "-O2";
    /** Compiler executable. */
    std::string compiler = "c++";
    /** Extra flags (e.g. "-mavx2"). */
    std::string extraFlags;
    /** Keep the temp directory (for debugging generated code). */
    bool keepArtifacts = false;
};

/**
 * One compiled-and-loaded shared object. Unloads (dlclose) and removes
 * its artifacts on destruction; resolved symbols must not outlive it.
 */
class JitModule
{
  public:
    /**
     * Compile @p source and load the result.
     * @throws Error when the compiler or loader fails (the compiler's
     * stderr is included in the message).
     */
    JitModule(const std::string &source, const JitOptions &options = {});

    JitModule(const JitModule &) = delete;
    JitModule &operator=(const JitModule &) = delete;
    JitModule(JitModule &&other) noexcept;
    JitModule &operator=(JitModule &&other) noexcept;
    ~JitModule();

    /**
     * Resolve @p name (must be extern "C" in the generated source).
     * @throws Error when the symbol is missing.
     */
    void *symbol(const std::string &name) const;

    /** Typed convenience wrapper over symbol(). */
    template <typename Fn>
    Fn
    function(const std::string &name) const
    {
        return reinterpret_cast<Fn>(symbol(name));
    }

    /** Seconds spent in the external compiler. */
    double compileSeconds() const { return compileSeconds_; }

    /** Path of the loaded shared object. */
    const std::string &libraryPath() const { return libraryPath_; }

  private:
    void unload();

    void *handle_ = nullptr;
    std::string workDir_;
    std::string libraryPath_;
    double compileSeconds_ = 0.0;
    bool keepArtifacts_ = false;
};

/** True when a working system compiler is available. */
bool systemCompilerAvailable(const JitOptions &options = {});

} // namespace treebeard::codegen

#endif // TREEBEARD_CODEGEN_SYSTEM_JIT_H
