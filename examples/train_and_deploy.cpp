/**
 * @file
 * End-to-end workflow: train a gradient-boosted ensemble with the
 * in-repo GBDT trainer, evaluate it, save it to the native JSON model
 * format, reload it and compile it for fast batch inference.
 *
 *   ./examples/train_and_deploy
 */
#include <cstdio>

#include "common/rng.h"
#include "common/timer.h"
#include "data/dataset.h"
#include "model/serialization.h"
#include "train/gbdt_trainer.h"
#include "treebeard/compiler.h"

using namespace treebeard;

namespace {

/** Synthetic regression task: y = f(x) + noise. */
data::Dataset
makeTask(int64_t rows, uint64_t seed)
{
    Rng rng(seed);
    data::Dataset dataset(5);
    std::vector<float> labels;
    for (int64_t i = 0; i < rows; ++i) {
        float x0 = rng.uniformFloat();
        float x1 = rng.uniformFloat();
        float x2 = rng.uniformFloat();
        float x3 = rng.uniformFloat();
        float x4 = rng.uniformFloat();
        dataset.appendRow({x0, x1, x2, x3, x4});
        float y = 2.0f * x0 + (x1 > 0.5f ? 1.0f : 0.0f) * x2 -
                  0.5f * x3 + 0.05f * static_cast<float>(rng.gaussian());
        (void)x4; // an irrelevant feature the trees should ignore
        labels.push_back(y);
    }
    dataset.setLabels(std::move(labels));
    return dataset;
}

} // namespace

int
main()
{
    data::Dataset train_set = makeTask(4000, 1);
    data::Dataset test_set = makeTask(1000, 2);

    // Train.
    train::TrainingConfig config;
    config.numTrees = 120;
    config.maxDepth = 6;
    config.learningRate = 0.15;
    train::GbdtTrainer trainer(config);
    Timer train_timer;
    model::Forest forest = trainer.train(train_set);
    std::printf("trained %lld trees in %.2fs (final train MSE %.5f)\n",
                static_cast<long long>(forest.numTrees()),
                train_timer.elapsedSeconds(),
                trainer.history().back().trainingLoss);

    // Evaluate on held-out data.
    std::vector<float> predictions(
        static_cast<size_t>(test_set.numRows()));
    forest.predictBatch(test_set.rows(), test_set.numRows(),
                        predictions.data());
    double mse = train::meanSquaredError(predictions,
                                         test_set.labels());
    std::printf("test MSE: %.5f\n", mse);

    // Save + reload the model (the deployment artifact).
    std::string path = "/tmp/treebeard_example_model.json";
    model::saveForest(forest, path);
    model::Forest loaded = model::loadForest(path);
    std::printf("saved and reloaded model: %lld trees, %d features\n",
                static_cast<long long>(loaded.numTrees()),
                loaded.numFeatures());

    // Compile for inference and compare against the reference walk.
    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.interleaveFactor = 8;
    Session session = compile(loaded, schedule);

    std::vector<float> fast_predictions(
        static_cast<size_t>(test_set.numRows()));
    Timer reference_timer;
    loaded.predictBatch(test_set.rows(), test_set.numRows(),
                        predictions.data());
    double reference_s = reference_timer.elapsedSeconds();
    Timer compiled_timer;
    session.predict(test_set.rows(), test_set.numRows(),
                    fast_predictions.data());
    double compiled_s = compiled_timer.elapsedSeconds();

    double max_difference = 0.0;
    for (size_t i = 0; i < predictions.size(); ++i) {
        max_difference =
            std::max(max_difference,
                     std::abs(static_cast<double>(predictions[i]) -
                              fast_predictions[i]));
    }
    std::printf("reference walk: %.3f ms, compiled: %.3f ms "
                "(%.1fx), max |difference| = %.2e\n",
                reference_s * 1e3, compiled_s * 1e3,
                reference_s / compiled_s, max_difference);
    return 0;
}
