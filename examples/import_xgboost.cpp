/**
 * @file
 * Interop: import a model in the XGBoost JSON dump format (the
 * paper's models are XGBoost-trained) and compile it. The example
 * writes a small dump file first so it is fully self-contained.
 *
 *   ./examples/import_xgboost
 */
#include <cstdio>

#include "common/json.h"
#include "model/serialization.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    // A miniature XGBoost JSON dump (2 trees, 3 features).
    const char *dump = R"({
      "learner": {
        "learner_model_param": {"num_feature": "3", "base_score": "0.5"},
        "objective": {"name": "binary:logistic"},
        "gradient_booster": {
          "model": {
            "trees": [
              {
                "split_indices": [0, 2, 0, 0, 0],
                "split_conditions": [0.5, 0.3, 0, 0, 0],
                "left_children": [1, 3, -1, -1, -1],
                "right_children": [2, 4, -1, -1, -1],
                "base_weights": [0, 0, 0.8, -0.6, 0.2],
                "sum_hessian": [100, 60, 40, 35, 25]
              },
              {
                "split_indices": [1, 0, 0],
                "split_conditions": [0.4, 0, 0],
                "left_children": [1, -1, -1],
                "right_children": [2, -1, -1],
                "base_weights": [0, -0.3, 0.5],
                "sum_hessian": [100, 45, 55]
              }
            ]
          }
        }
      }
    })";

    std::string path = "/tmp/treebeard_xgboost_model.json";
    writeStringToFile(path, dump);

    model::Forest forest = model::loadXgboostModel(path);
    std::printf("imported: %lld trees, %d features, objective %s, "
                "base score %.2f\n",
                static_cast<long long>(forest.numTrees()),
                forest.numFeatures(),
                model::objectiveName(forest.objective()),
                forest.baseScore());

    Session session = compile(forest, {});
    std::vector<float> rows{
        0.2f, 0.1f, 0.2f, // left subtree, low f1
        0.2f, 0.9f, 0.9f, // left subtree, high f1
        0.9f, 0.9f, 0.1f, // right leaf of tree 0
    };
    std::vector<float> probabilities(3);
    session.predict(rows.data(), 3, probabilities.data());
    for (int r = 0; r < 3; ++r) {
        std::printf("row %d -> P(class 1) = %.4f (reference %.4f)\n",
                    r, probabilities[static_cast<size_t>(r)],
                    forest.predict(rows.data() + 3 * r));
    }
    return 0;
}
