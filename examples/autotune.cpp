/**
 * @file
 * Schedule auto-tuning: explore the Table II optimization space for a
 * model on this machine and report the best configurations — the
 * paper's "--explore" workflow.
 *
 *   ./examples/autotune
 */
#include <cstdio>

#include "data/synthetic.h"
#include "tuner/auto_tuner.h"

using namespace treebeard;

int
main()
{
    // A mid-size leaf-biased model (a scaled-down abalone).
    data::SyntheticModelSpec spec = data::scaledDown(
        data::benchmarkSpecByName("abalone"), /*max_trees=*/300,
        /*training_rows=*/2000);
    model::Forest forest = data::synthesizeForest(spec);
    data::Dataset sample = data::generateFeatures(spec, 512, 3);

    tuner::TunerOptions options;
    options.repetitions = 2;
    std::printf("exploring %zu configurations...\n",
                tuner::enumerateSchedules(options).size());

    tuner::TunerResult result = tuner::exploreSchedules(
        forest, sample.rows(), sample.numRows(), options);

    std::printf("\ntop 5 configurations (us/row):\n");
    for (size_t i = 0; i < result.all.size() && i < 5; ++i) {
        const tuner::TunedPoint &point = result.all[i];
        std::printf("  %8.3f   %s\n",
                    point.seconds * 1e6 / sample.numRows(),
                    point.schedule.toString().c_str());
    }
    std::printf("\nbottom 3 configurations:\n");
    for (size_t i = result.all.size() >= 3 ? result.all.size() - 3 : 0;
         i < result.all.size(); ++i) {
        const tuner::TunedPoint &point = result.all[i];
        std::printf("  %8.3f   %s\n",
                    point.seconds * 1e6 / sample.numRows(),
                    point.schedule.toString().c_str());
    }
    std::printf("\nbest-vs-worst spread: %.1fx\n",
                result.all.back().seconds / result.best.seconds);
    return 0;
}
