/**
 * @file
 * Quickstart: build a small decision-tree ensemble by hand, compile
 * it with Treebeard, run batch inference and inspect the compiler's
 * intermediate representations.
 *
 *   ./examples/quickstart
 */
#include <cstdio>
#include <vector>

#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    // A two-tree regression ensemble over 3 features, built directly
    // through the model API (normally you would load a model file or
    // train one; see the other examples).
    model::Forest forest(/*num_features=*/3,
                         model::Objective::kRegression,
                         /*base_score=*/0.5f);
    {
        model::DecisionTree tree;
        model::NodeIndex cheap = tree.addLeaf(0.1f);
        model::NodeIndex mid = tree.addLeaf(0.4f);
        model::NodeIndex rich = tree.addLeaf(0.9f);
        model::NodeIndex right = tree.addInternal(1, 0.7f, mid, rich);
        tree.setRoot(tree.addInternal(0, 0.5f, cheap, right));
        forest.addTree(std::move(tree));
    }
    {
        model::DecisionTree tree;
        model::NodeIndex low = tree.addLeaf(-0.2f);
        model::NodeIndex high = tree.addLeaf(0.3f);
        tree.setRoot(tree.addInternal(2, 0.25f, low, high));
        forest.addTree(std::move(tree));
    }

    // Compile: the schedule selects the optimizations of the paper.
    hir::Schedule schedule;
    schedule.tileSize = 2;
    schedule.interleaveFactor = 2;
    CompilerOptions options;
    options.recordIrDumps = true;
    Session session = compile(forest, schedule, options);

    // Batch inference through the generated predictForest.
    std::vector<float> rows{
        0.2f, 0.9f, 0.1f, //
        0.8f, 0.9f, 0.5f, //
        0.8f, 0.1f, 0.1f, //
    };
    std::vector<float> predictions(3);
    session.predict(rows.data(), 3, predictions.data());

    std::printf("predictions:");
    for (float p : predictions)
        std::printf(" %.4f", p);
    std::printf("\n\n");

    // The reference walk agrees, of course.
    std::printf("reference:  ");
    for (int r = 0; r < 3; ++r)
        std::printf(" %.4f", forest.predict(rows.data() + 3 * r));
    std::printf("\n\n");

    // Inspect the pipeline: HIR after tiling/reordering, then MIR.
    std::printf("=== high-level IR ===\n%s\n",
                session.artifacts().hirDump.c_str());
    std::printf("=== mid-level IR ===\n%s\n",
                session.artifacts().mirDump.c_str());
    std::printf("=== low-level buffers ===\n%s\n",
                session.artifacts().lirSummary.c_str());

    std::printf("=== pass pipeline ===\n");
    for (const auto &trace : session.artifacts().passTraces) {
        std::printf("%-22s %8.3f ms\n", trace.name.c_str(),
                    trace.seconds * 1e3);
    }
    return 0;
}
