/**
 * @file
 * The source backend: lower a model through the full pipeline, emit
 * the specialized C++ predictForest, compile it with the system
 * compiler, and compare it against the kernel runtime.
 *
 *   ./examples/emit_source
 */
#include <cstdio>

#include "codegen/cpp_emitter.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "lir/layout_builder.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    data::SyntheticModelSpec spec = data::scaledDown(
        data::benchmarkSpecByName("airline"), /*max_trees=*/100,
        /*training_rows=*/1000);
    model::Forest forest = data::synthesizeForest(spec);
    data::Dataset batch = data::generateFeatures(spec, 1024, 5);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.interleaveFactor = 4;

    // Run the HIR/MIR/LIR pipeline by hand to get the buffers...
    hir::HirModule module(forest, schedule);
    module.runAllHirPasses();
    lir::ForestBuffers buffers = lir::buildForestBuffers(module);

    // ...emit + JIT the specialized source...
    codegen::JitOptions jit_options;
    jit_options.optLevel = "-O2";
    codegen::JitCompiledSession jit_session(
        std::move(buffers), module.groups(), schedule, jit_options);
    std::printf("emitted %zu bytes of C++, compiled in %.2fs\n",
                jit_session.source().size(),
                jit_session.compileSeconds());

    // Show the head of the generated translation unit.
    std::printf("--- generated source (first 40 lines) ---\n");
    size_t pos = 0;
    for (int line = 0; line < 40 && pos != std::string::npos; ++line) {
        size_t next = jit_session.source().find('\n', pos);
        std::printf("%s\n",
                    jit_session.source().substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
    }
    std::printf("--- (truncated) ---\n\n");

    // ...and race it against the kernel runtime and the reference.
    InferenceSession kernel_session = compileForest(forest, schedule);
    std::vector<float> jit_out(1024), kernel_out(1024), reference(1024);

    Timer jit_timer;
    jit_session.predict(batch.rows(), 1024, jit_out.data());
    double jit_s = jit_timer.elapsedSeconds();
    Timer kernel_timer;
    kernel_session.predict(batch.rows(), 1024, kernel_out.data());
    double kernel_s = kernel_timer.elapsedSeconds();
    forest.predictBatch(batch.rows(), 1024, reference.data());

    double max_difference = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        max_difference = std::max(
            max_difference,
            std::abs(static_cast<double>(jit_out[i]) - reference[i]));
        max_difference = std::max(
            max_difference,
            std::abs(static_cast<double>(kernel_out[i]) -
                     reference[i]));
    }
    std::printf("source-JIT backend: %.3f ms; kernel runtime: %.3f ms;"
                " max |difference vs reference| = %.2e\n",
                jit_s * 1e3, kernel_s * 1e3, max_difference);
    return 0;
}
