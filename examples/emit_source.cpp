/**
 * @file
 * The source backend through the unified API: compile the same model
 * once per backend, inspect the emitted specialized C++, and race the
 * JIT-compiled code against the kernel runtime and the reference.
 *
 *   ./examples/emit_source
 */
#include <cstdio>

#include "common/timer.h"
#include "data/synthetic.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    data::SyntheticModelSpec spec = data::scaledDown(
        data::benchmarkSpecByName("airline"), /*max_trees=*/100,
        /*training_rows=*/1000);
    model::Forest forest = data::synthesizeForest(spec);
    data::Dataset batch = data::generateFeatures(spec, 1024, 5);

    hir::Schedule schedule;
    schedule.tileSize = 8;
    schedule.interleaveFactor = 4;

    // One entry point, two backends.
    CompilerOptions jit_options;
    jit_options.backend = Backend::kSourceJit;
    jit_options.jit.optLevel = "-O2";
    // Uncomment to persist compiled objects across runs:
    // jit_options.jit.cacheDir = "/tmp/treebeard-cache";
    Session jit_session = compile(forest, schedule, jit_options);
    Session kernel_session = compile(forest, schedule);

    const std::string &source =
        jit_session.artifacts().generatedSource;
    std::printf("emitted %zu bytes of C++, compiled in %.2fs\n",
                source.size(),
                jit_session.artifacts().jitCompileSeconds);

    // Show the head of the generated translation unit.
    std::printf("--- generated source (first 40 lines) ---\n");
    size_t pos = 0;
    for (int line = 0; line < 40 && pos != std::string::npos; ++line) {
        size_t next = source.find('\n', pos);
        std::printf("%s\n", source.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
    }
    std::printf("--- (truncated) ---\n\n");

    // Race the backends against the model-level reference walk.
    std::vector<float> jit_out(1024), kernel_out(1024), reference(1024);

    Timer jit_timer;
    jit_session.predict(batch.rows(), 1024, jit_out.data());
    double jit_s = jit_timer.elapsedSeconds();
    Timer kernel_timer;
    kernel_session.predict(batch.rows(), 1024, kernel_out.data());
    double kernel_s = kernel_timer.elapsedSeconds();
    forest.predictBatch(batch.rows(), 1024, reference.data());

    double max_difference = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        max_difference = std::max(
            max_difference,
            std::abs(static_cast<double>(jit_out[i]) - reference[i]));
        max_difference = std::max(
            max_difference,
            std::abs(static_cast<double>(kernel_out[i]) -
                     reference[i]));
    }
    std::printf("source-JIT backend: %.3f ms; kernel runtime: %.3f ms;"
                " max |difference vs reference| = %.2e\n",
                jit_s * 1e3, kernel_s * 1e3, max_difference);
    return 0;
}
