/**
 * @file
 * Multiclass classification end to end: train a softmax-boosted
 * ensemble on a synthetic 4-class problem (XGBoost multi:softprob
 * layout: one tree per class per round), compile it, and evaluate
 * accuracy through the generated predictForest.
 *
 *   ./examples/multiclass_classification
 */
#include <cstdio>

#include "common/rng.h"
#include "train/gbdt_trainer.h"
#include "treebeard/compiler.h"

using namespace treebeard;

namespace {

/** Four noisy clusters in a 2-D ring. */
data::Dataset
makeClusters(int64_t rows, uint64_t seed)
{
    Rng rng(seed);
    data::Dataset dataset(2);
    std::vector<float> labels;
    const float centers[4][2] = {
        {0.25f, 0.25f}, {0.75f, 0.25f}, {0.25f, 0.75f}, {0.75f, 0.75f}};
    for (int64_t i = 0; i < rows; ++i) {
        int32_t k = static_cast<int32_t>(rng.uniformInt(0, 3));
        float x = centers[k][0] +
                  0.08f * static_cast<float>(rng.gaussian());
        float y = centers[k][1] +
                  0.08f * static_cast<float>(rng.gaussian());
        dataset.appendRow({x, y});
        labels.push_back(static_cast<float>(k));
    }
    dataset.setLabels(std::move(labels));
    return dataset;
}

double
accuracy(const Session &session, const data::Dataset &dataset)
{
    int32_t classes = session.numClasses();
    std::vector<float> probabilities(
        static_cast<size_t>(dataset.numRows()) * classes);
    session.predict(dataset.rows(), dataset.numRows(),
                    probabilities.data());
    int64_t correct = 0;
    for (int64_t r = 0; r < dataset.numRows(); ++r) {
        const float *p = probabilities.data() + r * classes;
        int32_t argmax = 0;
        for (int32_t k = 1; k < classes; ++k) {
            if (p[k] > p[argmax])
                argmax = k;
        }
        correct += argmax == static_cast<int32_t>(dataset.label(r));
    }
    return static_cast<double>(correct) /
           static_cast<double>(dataset.numRows());
}

} // namespace

int
main()
{
    data::Dataset train_set = makeClusters(3000, 10);
    data::Dataset test_set = makeClusters(1000, 11);

    train::TrainingConfig config;
    config.objective = model::Objective::kMulticlassSoftmax;
    config.numClasses = 4;
    config.numTrees = 25; // boosting rounds (x 4 trees per round)
    config.maxDepth = 4;
    config.learningRate = 0.25;
    train::GbdtTrainer trainer(config);
    model::Forest forest = trainer.train(train_set);
    std::printf("trained %lld trees (%d classes x %lld rounds); "
                "final train log-loss %.4f\n",
                static_cast<long long>(forest.numTrees()),
                forest.numClasses(),
                static_cast<long long>(config.numTrees),
                trainer.history().back().trainingLoss);

    hir::Schedule schedule;
    schedule.tileSize = 4;
    schedule.interleaveFactor = 4;
    Session session = compile(forest, schedule);

    std::printf("train accuracy: %.1f%%\n",
                100.0 * accuracy(session, train_set));
    std::printf("test accuracy:  %.1f%%\n",
                100.0 * accuracy(session, test_set));

    // Per-class probabilities for a few hand-picked points.
    const float probes[3][2] = {
        {0.25f, 0.25f}, {0.75f, 0.75f}, {0.5f, 0.5f}};
    std::vector<float> out(4);
    for (const float *probe : {probes[0], probes[1], probes[2]}) {
        session.predict(probe, 1, out.data());
        std::printf("P(class | x=[%.2f, %.2f]) =", probe[0], probe[1]);
        for (float p : out)
            std::printf(" %.3f", p);
        std::printf("\n");
    }
    return 0;
}
