/**
 * @file
 * Inference serving simulation: drive a compiled model with request
 * batches of varying size and report latency percentiles and
 * throughput per batch size — the batch-size trade-off study behind
 * the paper's Figures 9 and 12, framed as a serving workload.
 *
 *   ./examples/serving_latency
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "data/synthetic.h"
#include "treebeard/compiler.h"

using namespace treebeard;

int
main()
{
    // A mid-size model (scaled-down covtype).
    data::SyntheticModelSpec spec = data::scaledDown(
        data::benchmarkSpecByName("covtype"), /*max_trees=*/200,
        /*training_rows=*/2000);
    model::Forest forest = data::synthesizeForest(spec);
    Session session =
        compile(forest, [] {
            hir::Schedule schedule;
            schedule.tileSize = 8;
            schedule.interleaveFactor = 8;
            return schedule;
        }());

    std::printf("model: %lld trees, %d features\n\n",
                static_cast<long long>(forest.numTrees()),
                forest.numFeatures());
    std::printf("%10s %12s %12s %12s %14s\n", "batch", "p50 (us)",
                "p95 (us)", "p99 (us)", "rows/s");

    for (int64_t batch : {1, 8, 64, 256, 1024}) {
        data::Dataset requests =
            data::generateFeatures(spec, batch * 64, 99);
        std::vector<float> predictions(static_cast<size_t>(batch));

        // 64 simulated requests per batch size.
        std::vector<double> latencies;
        for (int64_t request = 0; request < 64; ++request) {
            const float *rows =
                requests.rows() +
                request * batch * forest.numFeatures();
            Timer timer;
            session.predict(rows, batch, predictions.data());
            latencies.push_back(timer.elapsedMicros());
        }
        std::sort(latencies.begin(), latencies.end());
        auto percentile = [&](double p) {
            size_t index = static_cast<size_t>(
                p * static_cast<double>(latencies.size() - 1));
            return latencies[index];
        };
        double total_us = 0.0;
        for (double latency : latencies)
            total_us += latency;
        double rows_per_second =
            static_cast<double>(batch * 64) / (total_us * 1e-6);

        std::printf("%10lld %12.1f %12.1f %12.1f %14.0f\n",
                    static_cast<long long>(batch), percentile(0.50),
                    percentile(0.95), percentile(0.99),
                    rows_per_second);
    }
    std::printf("\nLarger batches amortize per-call overhead and keep "
                "the tree-major loop cache-resident;\nper-request "
                "latency grows sublinearly until the working set "
                "spills.\n");
    return 0;
}
